test/test_machine.ml: Alcotest Ddbm Ddbm_model List Params Printf String
