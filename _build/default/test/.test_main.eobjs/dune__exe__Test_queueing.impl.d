test/test_queueing.ml: Alcotest Cpu Ddbm Ddbm_model Desim Disk Engine Params Printf Rng Stats
