test/cc_harness.ml: Cc_intf Ddbm_model Desim Engine Ids List Plan Timestamp Txn
