test/test_cpu.ml: Alcotest Cpu Desim Engine Float Gen List QCheck QCheck_alcotest
