test/test_bto.ml: Alcotest Array Bto Cc_harness Cc_intf Ddbm_cc Ddbm_model Desim Engine Gen List Printf QCheck QCheck_alcotest Txn
