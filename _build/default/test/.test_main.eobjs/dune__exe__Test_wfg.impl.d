test/test_wfg.ml: Alcotest Array Cc_harness Cc_intf Ddbm_cc Ddbm_model Gen Hashtbl List QCheck QCheck_alcotest Txn Wfg
