test/test_engine.ml: Alcotest Desim Engine Ivar List
