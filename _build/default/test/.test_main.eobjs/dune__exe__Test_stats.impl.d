test/test_stats.ml: Alcotest Desim Gen List Printf QCheck QCheck_alcotest Rng Stats
