test/test_replication.ml: Alcotest Catalog Ddbm Ddbm_model Desim Ids List Params Plan Printf Workload
