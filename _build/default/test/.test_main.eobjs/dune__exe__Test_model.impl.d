test/test_model.ml: Alcotest Array Catalog Ddbm_model Desim Ids List Params Plan Printf QCheck QCheck_alcotest Stdlib Timestamp Txn Workload
