test/test_experiment.ml: Alcotest Astring_contains Ddbm Ddbm_model List Option Params Printf String
