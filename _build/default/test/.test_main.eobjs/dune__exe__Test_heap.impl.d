test/test_heap.ml: Alcotest Desim Heap List QCheck QCheck_alcotest
