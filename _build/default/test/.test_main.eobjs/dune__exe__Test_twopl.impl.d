test/test_twopl.ml: Alcotest Cc_harness Cc_intf Ddbm_cc Ddbm_model Desim Engine Twopl Txn
