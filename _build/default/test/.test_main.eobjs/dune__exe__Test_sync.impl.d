test/test_sync.ml: Alcotest Desim Engine Ivar List Mailbox
