test/test_wound_wait.ml: Alcotest Array Cc_harness Cc_intf Ddbm_cc Ddbm_model Desim Engine Gen List QCheck QCheck_alcotest Random Txn Wound_wait
