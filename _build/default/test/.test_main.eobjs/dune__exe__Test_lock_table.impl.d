test/test_lock_table.ml: Alcotest Array Cc_harness Cc_intf Ddbm_cc Ddbm_model Desim Engine Gen List Lock_table Printf QCheck QCheck_alcotest Stats Txn
