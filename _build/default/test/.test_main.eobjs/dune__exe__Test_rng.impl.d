test/test_rng.ml: Alcotest Array Desim Float Fun List Printf QCheck QCheck_alcotest Rng
