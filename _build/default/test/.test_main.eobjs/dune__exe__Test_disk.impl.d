test/test_disk.ml: Alcotest Desim Disk Engine List Printf Rng
