test/test_wait_die.ml: Alcotest Cc_harness Cc_intf Ddbm_cc Ddbm_model Desim Engine Txn Wait_die
