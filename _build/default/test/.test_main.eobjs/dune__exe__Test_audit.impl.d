test/test_audit.ml: Alcotest Array Cc_harness Ddbm Ddbm_model Ids Params
