open Desim

let feq ?(eps = 1e-6) a b = abs_float (a -. b) < eps

(* One PS job on an idle 1000-instr/s CPU: 500 instructions take 0.5 s. *)
let test_single_job_latency () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let finished = ref nan in
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:500.;
      finished := Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "0.5s" true (feq !finished 0.5)

(* Two equal PS jobs share the CPU: both finish at 2 * work/rate. *)
let test_ps_sharing () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let t1 = ref nan and t2 = ref nan in
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:500.;
      t1 := Engine.now eng);
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:500.;
      t2 := Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "job1 at 1.0" true (feq !t1 1.0);
  Alcotest.(check bool) "job2 at 1.0" true (feq !t2 1.0)

(* Unequal jobs: 300 and 600 instr. Shared until 0.6s (300 each), then the
   long job alone finishes its remaining 300 at 0.9s. *)
let test_ps_unequal () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let t_short = ref nan and t_long = ref nan in
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:300.;
      t_short := Engine.now eng);
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:600.;
      t_long := Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "short at 0.6" true (feq !t_short 0.6);
  Alcotest.(check bool) "long at 0.9" true (feq !t_long 0.9)

(* Late arrival: job A (600) alone for 0.3s (300 done), then B (150)
   arrives; they share until B done at 0.3+0.3=0.6, A finishes remaining
   150 at 0.75. *)
let test_ps_late_arrival () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let ta = ref nan and tb = ref nan in
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:600.;
      ta := Engine.now eng);
  Engine.spawn eng (fun () ->
      Engine.wait 0.3;
      Cpu.consume cpu ~instructions:150.;
      tb := Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "B at 0.6" true (feq !tb 0.6);
  Alcotest.(check bool) "A at 0.75" true (feq !ta 0.75)

(* Priority (message) work preempts PS work entirely. PS job of 500 would
   finish at 0.5, but a 200-instr message arriving at 0.1 stalls it for
   0.2s -> PS finishes at 0.7. *)
let test_priority_preempts_ps () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let t_ps = ref nan and t_msg = ref nan in
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:500.;
      t_ps := Engine.now eng);
  Engine.spawn eng (fun () ->
      Engine.wait 0.1;
      Cpu.consume_priority cpu ~instructions:200.;
      t_msg := Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "msg at 0.3" true (feq !t_msg 0.3);
  Alcotest.(check bool) "ps delayed to 0.7" true (feq !t_ps 0.7)

(* Messages are FCFS among themselves. *)
let test_priority_fcfs () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let log = ref [] in
  Cpu.submit_priority cpu ~instructions:100. (fun () -> log := 1 :: !log);
  Cpu.submit_priority cpu ~instructions:100. (fun () -> log := 2 :: !log);
  Cpu.submit_priority cpu ~instructions:100. (fun () -> log := 3 :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check bool) "total 0.3s" true (feq (Engine.now eng) 0.3)

let test_zero_work_immediate () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let ran = ref false in
  Cpu.submit cpu ~instructions:0. (fun () -> ran := true);
  Alcotest.(check bool) "immediate" true !ran

let test_utilization () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  Engine.spawn eng (fun () ->
      Cpu.consume cpu ~instructions:500.;
      (* busy 0..0.5, idle 0.5..1.0 *)
      Engine.wait 0.5);
  Engine.run eng;
  Alcotest.(check bool) "util 0.5" true
    (abs_float (Cpu.utilization cpu -. 0.5) < 1e-6)

(* Work conservation: total completion time of a batch equals total
   instructions / rate regardless of arrival interleaving. *)
let prop_work_conservation =
  QCheck.Test.make ~name:"cpu PS work conservation" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 10) (int_range 1 1000))
    (fun works ->
      let eng = Engine.create () in
      let cpu = Cpu.create eng ~rate:1000. in
      let last = ref 0. in
      List.iter
        (fun w ->
          Engine.spawn eng (fun () ->
              Cpu.consume cpu ~instructions:(float_of_int w);
              last := Float.max !last (Engine.now eng)))
        works;
      Engine.run eng;
      let total = List.fold_left ( + ) 0 works in
      abs_float (!last -. (float_of_int total /. 1000.)) < 1e-6)

let suite =
  [
    Alcotest.test_case "single job latency" `Quick test_single_job_latency;
    Alcotest.test_case "ps equal sharing" `Quick test_ps_sharing;
    Alcotest.test_case "ps unequal jobs" `Quick test_ps_unequal;
    Alcotest.test_case "ps late arrival" `Quick test_ps_late_arrival;
    Alcotest.test_case "priority preempts ps" `Quick test_priority_preempts_ps;
    Alcotest.test_case "priority fcfs" `Quick test_priority_fcfs;
    Alcotest.test_case "zero work immediate" `Quick test_zero_work_immediate;
    Alcotest.test_case "utilization" `Quick test_utilization;
    QCheck_alcotest.to_alcotest prop_work_conservation;
  ]
