open Desim

let mk ?(lo = 0.01) ?(hi = 0.03) () =
  let eng = Engine.create () in
  let rng = Rng.create 123 in
  (eng, Disk.create eng rng ~min_time:lo ~max_time:hi)

let test_single_read_time () =
  let eng, d = mk ~lo:0.02 ~hi:0.02 () in
  let t = ref nan in
  Engine.spawn eng (fun () ->
      Disk.read d;
      t := Engine.now eng);
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "deterministic service" 0.02 !t

let test_fcfs_reads () =
  let eng, d = mk ~lo:0.02 ~hi:0.02 () in
  let log = ref [] in
  for i = 1 to 3 do
    Disk.submit_read d (fun () -> log := (i, Engine.now eng) :: !log)
  done;
  Engine.run eng;
  let order = List.rev_map fst !log in
  Alcotest.(check (list int)) "fcfs" [ 1; 2; 3 ] order;
  let times = List.rev_map snd !log in
  Alcotest.(check (list (float 1e-9))) "sequential" [ 0.02; 0.04; 0.06 ] times

(* A write arriving while reads are queued jumps the read queue (but does
   not preempt the in-service read). *)
let test_write_priority () =
  let eng, d = mk ~lo:0.02 ~hi:0.02 () in
  let log = ref [] in
  Disk.submit_read d (fun () -> log := `R1 :: !log);
  Disk.submit_read d (fun () -> log := `R2 :: !log);
  ignore
    (Engine.schedule eng ~at:0.01 (fun () ->
         Disk.submit_write d (fun () -> log := `W :: !log)));
  Engine.run eng;
  let to_s = function `R1 -> "r1" | `R2 -> "r2" | `W -> "w" in
  Alcotest.(check (list string))
    "write jumps queue" [ "r1"; "w"; "r2" ]
    (List.rev_map to_s !log)

let test_service_time_bounds () =
  let eng, d = mk ~lo:0.01 ~hi:0.03 () in
  let prev = ref 0. in
  Engine.spawn eng (fun () ->
      for _ = 1 to 200 do
        Disk.read d;
        let service = Engine.now eng -. !prev in
        prev := Engine.now eng;
        if service < 0.01 -. 1e-12 || service > 0.03 +. 1e-12 then
          Alcotest.fail "service time out of bounds"
      done);
  Engine.run eng

let test_mean_service_time () =
  let eng, d = mk ~lo:0.01 ~hi:0.03 () in
  let n = 2000 in
  Engine.spawn eng (fun () ->
      for _ = 1 to n do
        Disk.read d
      done);
  Engine.run eng;
  let mean = Engine.now eng /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f near 0.02" mean)
    true
    (abs_float (mean -. 0.02) < 0.001)

let test_op_counts () =
  let eng, d = mk () in
  Disk.submit_read d ignore;
  Disk.submit_write d ignore;
  Disk.submit_write d ignore;
  Engine.run eng;
  let r, w = Disk.op_counts d in
  Alcotest.(check (pair int int)) "counts" (1, 2) (r, w)

let test_utilization_full () =
  let eng, d = mk ~lo:0.02 ~hi:0.02 () in
  Engine.spawn eng (fun () ->
      Disk.read d;
      Disk.read d);
  Engine.run eng;
  Alcotest.(check bool) "fully busy" true
    (abs_float (Disk.utilization d -. 1.0) < 1e-9)

let test_queue_length () =
  let eng, d = mk ~lo:0.02 ~hi:0.02 () in
  Disk.submit_read d ignore;
  Disk.submit_read d ignore;
  Disk.submit_write d ignore;
  (* before running: one in service, two queued *)
  Alcotest.(check int) "queue length" 3 (Disk.queue_length d);
  Engine.run eng;
  Alcotest.(check int) "drained" 0 (Disk.queue_length d)

let suite =
  [
    Alcotest.test_case "single read time" `Quick test_single_read_time;
    Alcotest.test_case "fcfs reads" `Quick test_fcfs_reads;
    Alcotest.test_case "write priority" `Quick test_write_priority;
    Alcotest.test_case "service bounds" `Quick test_service_time_bounds;
    Alcotest.test_case "mean service time" `Slow test_mean_service_time;
    Alcotest.test_case "op counts" `Quick test_op_counts;
    Alcotest.test_case "utilization" `Quick test_utilization_full;
    Alcotest.test_case "queue length" `Quick test_queue_length;
  ]
