examples/deadlock_demo.ml: Array Cc_intf Cpu Ddbm_cc Ddbm_model Desim Engine Format Ids Net Plan Queue Snoop Timestamp Twopl Txn Wound_wait
