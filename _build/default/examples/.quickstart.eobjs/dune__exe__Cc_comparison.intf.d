examples/cc_comparison.mli:
