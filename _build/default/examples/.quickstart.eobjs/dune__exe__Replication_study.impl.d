examples/replication_study.ml: Ddbm Ddbm_model Format List Params
