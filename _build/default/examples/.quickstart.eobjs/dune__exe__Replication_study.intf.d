examples/replication_study.mli:
