examples/scaling.mli:
