examples/scaling.ml: Ddbm Ddbm_model Format List Params
