examples/cc_comparison.ml: Ddbm Ddbm_model Format List Params
