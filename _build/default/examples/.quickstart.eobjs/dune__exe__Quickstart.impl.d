examples/quickstart.ml: Ddbm Ddbm_model Format Params
