examples/quickstart.mli:
