examples/partitioning_study.mli:
