examples/deadlock_demo.mli:
