(* The paper's headline experiment in miniature: compare the four
   concurrency control algorithms (and the NO_DC contention-free bound)
   on the same 8-node machine at three load levels, and observe

       2PL  >=  BTO  >=  WW  >=  OPT

   in throughput, with abort ratios ordered the other way (Section 4.2).

   Run with:  dune exec examples/cc_comparison.exe *)

open Ddbm_model

let algorithms =
  [ Params.No_dc; Params.Twopl; Params.Bto; Params.Wound_wait; Params.Opt ]

let run ~algorithm ~think =
  let params =
    {
      Params.default with
      Params.workload =
        { Params.default.Params.workload with Params.think_time = think };
      cc = { Params.default.Params.cc with Params.algorithm };
      run =
        { Params.seed = 7; warmup = 30.; measure = 200.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
    }
  in
  Ddbm.Machine.run params

let () =
  Format.printf
    "Concurrency control comparison, 8-node machine, 8-way declustering@.";
  Format.printf "(small database: 8 relations x 8 partitions x 300 pages)@.@.";
  List.iter
    (fun think ->
      Format.printf "--- mean think time %.0f s ---@." think;
      Format.printf "%-6s  %10s  %12s  %11s  %9s@." "algo" "tput tx/s"
        "response s" "abort ratio" "disk util";
      List.iter
        (fun algorithm ->
          let r = run ~algorithm ~think in
          Format.printf "%-6s  %10.2f  %12.2f  %11.3f  %9.2f@."
            (Params.cc_algorithm_name algorithm)
            r.Ddbm.Sim_result.throughput r.Ddbm.Sim_result.mean_response
            r.Ddbm.Sim_result.abort_ratio r.Ddbm.Sim_result.proc_disk_util)
        algorithms;
      Format.printf "@.")
    [ 4.; 8.; 16. ];
  Format.printf
    "Blocking beats restarts under contention: the more an algorithm@.\
     relies on aborts to resolve conflicts (OPT most of all), the more@.\
     work it wastes, exactly as the paper concludes.@."
