(* Quickstart: simulate the paper's default database machine (one 10-MIPS
   host, eight 1-MIPS processing nodes with two disks each, 128 terminals)
   under distributed two-phase locking, and print the measured metrics.

   Run with:  dune exec examples/quickstart.exe *)

open Ddbm_model

let () =
  (* Params.default is Table 4's "fixed" configuration: 8 nodes, 8-way
     declustering, 300-page partitions, 2K-instruction process startup,
     1K-instruction messages. We add a mean think time of 8 seconds and a
     moderate measurement window. *)
  let params =
    {
      Params.default with
      Params.workload =
        { Params.default.Params.workload with Params.think_time = 8. };
      run =
        { Params.seed = 42; warmup = 30.; measure = 200.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
    }
  in
  let result = Ddbm.Machine.run params in
  Format.printf "%a@." Ddbm.Sim_result.pp result;
  Format.printf
    "@.The simulator processed %d events covering %.0f simulated seconds@."
    result.Ddbm.Sim_result.sim_events result.Ddbm.Sim_result.sim_end;
  Format.printf
    "Transactions read 64 pages (8 per partition across 8 partitions) and@.\
     update a quarter of them; response time above includes any restarts.@."
