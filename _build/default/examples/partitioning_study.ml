(* Intra-transaction parallelism study (Section 4.3 of the paper): hold
   the machine at 8 nodes and vary only how many nodes each relation is
   declustered across. Degree 1 runs each transaction as a single
   sequential cohort at one node; degree 8 splits it into 8 parallel
   cohorts. Moderate load shows the parallelism payoff; the algorithms
   that resolve conflicts by blocking (2PL) keep more of it than the ones
   that abort (OPT).

   Run with:  dune exec examples/partitioning_study.exe *)

open Ddbm_model

let run ~algorithm ~degree ~think =
  let d = Params.default in
  let params =
    {
      d with
      Params.database =
        { d.Params.database with Params.partitioning_degree = degree };
      workload = { d.Params.workload with Params.think_time = think };
      cc = { d.Params.cc with Params.algorithm };
      run =
        { Params.seed = 5; warmup = 40.; measure = 250.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
    }
  in
  Ddbm.Machine.run params

let () =
  let think = 8. in
  let degrees = [ 1; 2; 4; 8 ] in
  Format.printf
    "Partitioning study: 8-node machine, think %.0f s, small database@.@."
    think;
  List.iter
    (fun algorithm ->
      Format.printf "%s:@." (Params.cc_algorithm_name algorithm);
      let base = run ~algorithm ~degree:1 ~think in
      List.iter
        (fun degree ->
          let r =
            if degree = 1 then base else run ~algorithm ~degree ~think
          in
          Format.printf
            "  %d-way: response %6.2f s (speedup %.2fx), tput %6.2f tx/s, \
             abort ratio %.3f@."
            degree r.Ddbm.Sim_result.mean_response
            (base.Ddbm.Sim_result.mean_response
            /. r.Ddbm.Sim_result.mean_response)
            r.Ddbm.Sim_result.throughput r.Ddbm.Sim_result.abort_ratio)
        degrees;
      Format.printf "@.")
    [ Params.No_dc; Params.Twopl; Params.Opt ];
  Format.printf
    "Splitting a transaction into k cohorts shortens lock hold times@.\
     (2PL's blocking times drop markedly from 1-way to 8-way), but also@.\
     turns its deadlocks into slower-to-detect distributed ones — note@.\
     the abort-ratio jump as soon as transactions span several nodes.@.\
     OPT gains less from parallelism than NO_DC because it resolves@.\
     every conflict with an end-of-transaction abort, whose cost grows@.\
     with the number of cohorts. See EXPERIMENTS.md for the comparison@.\
     with the paper's Figures 8-13.@."
