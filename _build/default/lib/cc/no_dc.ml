(** The NO_DC ("no data contention") reference: 2PL against an infinitely
    large database, so no request ever conflicts and no transaction ever
    aborts. All resource costs (CC request CPU included) are still paid,
    making this the paper's upper-bound curve in every figure. *)

open Ddbm_model

let make (hooks : Cc_intf.hooks) : Cc_intf.node_cc =
  let grant (_ : Txn.t) (_ : Ids.Page.t) = hooks.Cc_intf.charge_cc_request () in
  {
    algorithm = Params.No_dc;
    cc_read = grant;
    cc_write = grant;
    cc_prepare = (fun txn -> not txn.Txn.doomed);
    cc_installed = (fun _ -> []);
    cc_commit = ignore;
    cc_abort = ignore;
    cc_edges = (fun () -> []);
    cc_blocking = Desim.Stats.Tally.create ();
  }
