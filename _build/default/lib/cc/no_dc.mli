(** The NO_DC ("no data contention") reference: every request granted
    instantly, no aborts — 2PL against an infinitely large database. All
    resource costs are still paid, making this the paper's upper-bound
    curve in every figure. *)

val make : Ddbm_model.Cc_intf.hooks -> Ddbm_model.Cc_intf.node_cc
