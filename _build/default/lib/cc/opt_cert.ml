(** Distributed timestamp-based optimistic concurrency control — the first
    (simpler) certification algorithm of [Sinh85] (Section 2.5).

    Cohorts read and write freely against local workspaces, remembering the
    version (write timestamp) of every item read. When all cohorts have
    reported back, the coordinator assigns the transaction a globally
    unique timestamp, carried on the "prepare to commit" message; each
    cohort then certifies its reads and writes in a critical section:

    - a read is certified iff (i) the version read is still current and
      (ii) no conflicting write with an earlier certification timestamp is
      locally certified but uncommitted (the transaction would have had to
      see it);
    - a write is certified iff (i) no read with a later timestamp has been
      certified and committed and (ii) no later read is locally certified.

    Conflicts are resolved purely by aborting the certifying transaction. *)

open Desim
open Ddbm_model
open Ids

type cert = { c_ts : Timestamp.t; c_key : int * int }

type page_state = {
  mutable rts : Timestamp.t option;  (** max certified-and-committed read *)
  mutable wts : Timestamp.t option;  (** current installed version *)
  mutable cert_reads : cert list;  (** locally certified, uncommitted *)
  mutable cert_writes : cert list;
}

type workspace = {
  mutable reads : (Page.t * Timestamp.t option) list;
      (** page, version observed at read time *)
  mutable writes : Page.t list;
  mutable certified : bool;
}

type t = {
  hooks : Cc_intf.hooks;
  pages : page_state Page_table.t;
  workspaces : (int * int, workspace) Hashtbl.t;
}

let create hooks =
  { hooks; pages = Page_table.create 512; workspaces = Hashtbl.create 64 }

let state_of t page =
  match Page_table.find_opt t.pages page with
  | Some s -> s
  | None ->
      let s = { rts = None; wts = None; cert_reads = []; cert_writes = [] } in
      Page_table.add t.pages page s;
      s

let workspace_of t txn =
  let k = Txn.key txn in
  match Hashtbl.find_opt t.workspaces k with
  | Some w -> w
  | None ->
      let w = { reads = []; writes = []; certified = false } in
      Hashtbl.add t.workspaces k w;
      w

let cc_read t txn page =
  t.hooks.Cc_intf.charge_cc_request ();
  let ws = workspace_of t txn in
  let state = state_of t page in
  ws.reads <- (page, state.wts) :: ws.reads

let cc_write t txn page =
  t.hooks.Cc_intf.charge_cc_request ();
  let ws = workspace_of t txn in
  ws.writes <- page :: ws.writes

let version_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Timestamp.equal x y
  | None, Some _ | Some _, None -> false

let certify t txn =
  match txn.Txn.commit_ts with
  | None -> invalid_arg "Opt_cert.certify: commit timestamp not assigned"
  | Some ts ->
      let ws = workspace_of t txn in
      let key = Txn.key txn in
      let read_ok (page, version) =
        let state = state_of t page in
        version_equal state.wts version
        && not
             (List.exists
                (fun c ->
                  c.c_key <> key && Timestamp.compare c.c_ts ts < 0)
                state.cert_writes)
      in
      let write_ok page =
        let state = state_of t page in
        (match state.rts with
        | Some r -> Timestamp.compare r ts <= 0
        | None -> true)
        && not
             (List.exists
                (fun c ->
                  c.c_key <> key && Timestamp.compare c.c_ts ts > 0)
                state.cert_reads)
      in
      if List.for_all read_ok ws.reads && List.for_all write_ok ws.writes
      then begin
        let cert = { c_ts = ts; c_key = key } in
        List.iter
          (fun (page, _) ->
            let state = state_of t page in
            state.cert_reads <- cert :: state.cert_reads)
          ws.reads;
        List.iter
          (fun page ->
            let state = state_of t page in
            state.cert_writes <- cert :: state.cert_writes)
          ws.writes;
        ws.certified <- true;
        true
      end
      else false

let drop_certs t txn =
  let key = Txn.key txn in
  let not_mine c = c.c_key <> key in
  let ws = workspace_of t txn in
  let scrub page =
    match Page_table.find_opt t.pages page with
    | None -> ()
    | Some state ->
        state.cert_reads <- List.filter not_mine state.cert_reads;
        state.cert_writes <- List.filter not_mine state.cert_writes
  in
  List.iter (fun (page, _) -> scrub page) ws.reads;
  List.iter scrub ws.writes

let cc_commit t txn =
  (match txn.Txn.commit_ts with
  | None -> invalid_arg "Opt_cert.commit: commit timestamp not assigned"
  | Some ts ->
      let ws = workspace_of t txn in
      List.iter
        (fun (page, _) ->
          let state = state_of t page in
          state.rts <-
            Some
              (match state.rts with
              | Some r -> Timestamp.max r ts
              | None -> ts))
        ws.reads;
      List.iter
        (fun page ->
          let state = state_of t page in
          state.wts <-
            Some
              (match state.wts with
              | Some w -> Timestamp.max w ts
              | None -> ts))
        ws.writes);
  drop_certs t txn;
  Hashtbl.remove t.workspaces (Txn.key txn)

let cc_abort t txn =
  drop_certs t txn;
  Hashtbl.remove t.workspaces (Txn.key txn)

(* Writes that will actually move the installed version forward: commits
   with a certification timestamp older than the current version are
   dropped Thomas-style by the max() install. *)
let cc_installed t txn =
  match txn.Txn.commit_ts with
  | None -> []
  | Some ts ->
      let ws = workspace_of t txn in
      List.filter
        (fun page ->
          match (state_of t page).wts with
          | Some w -> Timestamp.compare ts w > 0
          | None -> true)
        ws.writes

let make (hooks : Cc_intf.hooks) : Cc_intf.node_cc =
  let t = create hooks in
  {
    algorithm = Params.Opt;
    cc_read = (fun txn page -> cc_read t txn page);
    cc_write = (fun txn page -> cc_write t txn page);
    cc_prepare =
      (fun txn -> if txn.Txn.doomed then false else certify t txn);
    cc_installed = (fun txn -> cc_installed t txn);
    cc_commit = (fun txn -> cc_commit t txn);
    cc_abort = (fun txn -> cc_abort t txn);
    cc_edges = (fun () -> []);
    cc_blocking = Stats.Tally.create ();
  }
