lib/cc/lock_table.mli: Cc_intf Ddbm_model Desim Ids Txn
