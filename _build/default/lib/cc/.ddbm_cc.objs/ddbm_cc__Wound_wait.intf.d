lib/cc/wound_wait.mli: Ddbm_model
