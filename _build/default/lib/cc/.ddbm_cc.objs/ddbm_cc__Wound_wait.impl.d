lib/cc/wound_wait.ml: Cc_intf Ddbm_model Desim List Lock_table Params Txn
