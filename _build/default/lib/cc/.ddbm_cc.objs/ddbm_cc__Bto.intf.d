lib/cc/bto.mli: Ddbm_model
