lib/cc/registry.ml: Bto Cc_intf Ddbm_model No_dc Opt_cert Params Twopl Twopl_defer Wait_die Wound_wait
