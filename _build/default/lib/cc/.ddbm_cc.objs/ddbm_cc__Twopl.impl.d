lib/cc/twopl.ml: Cc_intf Ddbm_model Desim Hashtbl Lock_table Params Txn Wfg
