lib/cc/no_dc.mli: Ddbm_model
