lib/cc/opt_cert.ml: Cc_intf Ddbm_model Desim Hashtbl Ids List Page Page_table Params Stats Timestamp Txn
