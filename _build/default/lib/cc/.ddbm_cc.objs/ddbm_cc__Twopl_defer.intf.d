lib/cc/twopl_defer.mli: Ddbm_model
