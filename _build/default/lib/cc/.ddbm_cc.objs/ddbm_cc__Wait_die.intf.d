lib/cc/wait_die.mli: Ddbm_model
