lib/cc/bto.ml: Cc_intf Ddbm_model Desim Engine Hashtbl Ids List Page Page_table Params Stats Timestamp Txn
