lib/cc/wfg.ml: Cc_intf Ddbm_model Hashtbl List Option Timestamp Txn
