lib/cc/opt_cert.mli: Ddbm_model
