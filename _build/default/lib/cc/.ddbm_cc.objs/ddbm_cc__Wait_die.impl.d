lib/cc/wait_die.ml: Cc_intf Ddbm_model Desim List Lock_table Params Txn
