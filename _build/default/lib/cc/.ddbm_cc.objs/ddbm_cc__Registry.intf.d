lib/cc/registry.mli: Ddbm_model
