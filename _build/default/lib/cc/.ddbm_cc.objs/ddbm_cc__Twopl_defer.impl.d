lib/cc/twopl_defer.ml: Cc_intf Ddbm_model Desim Hashtbl Ids List Lock_table Page Params Txn Wfg
