lib/cc/snoop.mli: Cc_intf Ddbm_model Desim Net Txn
