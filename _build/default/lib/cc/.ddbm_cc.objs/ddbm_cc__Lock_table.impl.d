lib/cc/lock_table.ml: Cc_intf Ddbm_model Desim Engine Hashtbl Ids List Page Page_table Stats Txn
