lib/cc/no_dc.ml: Cc_intf Ddbm_model Desim Ids Params Txn
