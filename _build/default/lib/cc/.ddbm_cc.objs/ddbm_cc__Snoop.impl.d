lib/cc/snoop.ml: Cc_intf Ddbm_model Desim Engine Ids Ivar List Net Txn Wfg
