lib/cc/wfg.mli: Cc_intf Ddbm_model Hashtbl Txn
