lib/cc/twopl.mli: Ddbm_model
