(** Two-phase locking with deferred write locks — the improvement of
    [Care89] that the paper's footnote 13 credits with restoring 2PL's
    dominance over the optimistic algorithm even with expensive messages:
    cohorts take only read locks while executing and upgrade the pages
    they updated during the *first phase of the commit protocol* (here:
    inside the prepare processing), shortening the exclusive-lock window
    to the commit protocol itself.

    Conversion conflicts at prepare time can deadlock; they are covered
    by the same block-time local detection and Snoop machinery as plain
    2PL. A conversion rejected by an abort makes prepare vote "no". *)

open Ddbm_model
open Ids

type t = {
  hooks : Cc_intf.hooks;
  locks : Lock_table.t;
  write_sets : (int * int, Page.t list ref) Hashtbl.t;
}

let detect_local t (requester : Txn.t) =
  let continue_ = ref true in
  while !continue_ do
    let graph = Wfg.of_edges (Lock_table.edges t.locks) in
    let removed = Hashtbl.create 4 in
    match Wfg.find_cycle_through graph requester ~removed with
    | None -> continue_ := false
    | Some cycle ->
        let victim = Wfg.youngest cycle in
        t.hooks.Cc_intf.request_abort victim Txn.Local_deadlock;
        if Txn.same_attempt victim requester then continue_ := false
  done

let cc_read t txn page =
  t.hooks.Cc_intf.charge_cc_request ();
  Lock_table.request t.locks txn page Lock_table.S ~on_block:(fun _ ->
      detect_local t txn)

(* The write is only noted; the exclusive lock comes at prepare time. *)
let cc_write t (txn : Txn.t) page =
  t.hooks.Cc_intf.charge_cc_request ();
  let key = Txn.key txn in
  match Hashtbl.find_opt t.write_sets key with
  | Some pages -> pages := page :: !pages
  | None -> Hashtbl.add t.write_sets key (ref [ page ])

let cc_prepare t (txn : Txn.t) =
  if txn.Txn.doomed then false
  else begin
    let pages =
      match Hashtbl.find_opt t.write_sets (Txn.key txn) with
      | Some pages -> !pages
      | None -> []
    in
    try
      List.iter
        (fun page ->
          Lock_table.request t.locks txn page Lock_table.X ~on_block:(fun _ ->
              detect_local t txn))
        pages;
      not txn.Txn.doomed
    with Txn.Aborted _ -> false
  end

let finish t txn =
  Hashtbl.remove t.write_sets (Txn.key txn);
  Lock_table.release_all t.locks txn ~reject:(Txn.Aborted Txn.Peer_abort)

let make (hooks : Cc_intf.hooks) : Cc_intf.node_cc =
  let blocking = Desim.Stats.Tally.create () in
  let t =
    {
      hooks;
      locks = Lock_table.create hooks.Cc_intf.eng ~blocking;
      write_sets = Hashtbl.create 64;
    }
  in
  {
    algorithm = Params.Twopl_defer;
    cc_read = (fun txn page -> cc_read t txn page);
    cc_write = (fun txn page -> cc_write t txn page);
    cc_prepare = (fun txn -> cc_prepare t txn);
    cc_installed = (fun txn -> Lock_table.exclusive_pages t.locks txn);
    cc_commit = (fun txn -> finish t txn);
    cc_abort = (fun txn -> finish t txn);
    cc_edges = (fun () -> Lock_table.edges t.locks);
    cc_blocking = blocking;
  }
