(** Basic timestamp ordering (Section 2.4, [Bern80b]): accesses must
    occur in timestamp order or the requester aborts (Thomas write rule
    for write-write conflicts). Writes queue in timestamp order without
    blocking the writer and are installed at commit; readers block behind
    pending earlier writes until those become visible. *)

val make : Ddbm_model.Cc_intf.hooks -> Ddbm_model.Cc_intf.node_cc
