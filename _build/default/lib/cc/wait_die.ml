(** Wait-die locking — the other timestamp-based deadlock prevention
    policy of [Rose78], added as an extension (the paper evaluates only
    its wound-wait sibling).

    When a request conflicts: an older requester is allowed to wait, a
    younger requester "dies" — it aborts itself immediately (before ever
    enqueuing) and retries later with its original timestamp, so it
    eventually becomes the oldest and cannot starve. Deadlocks are
    impossible because every wait edge points from an older to a younger
    transaction. *)

open Ddbm_model

type t = { hooks : Cc_intf.hooks; locks : Lock_table.t }

let die_if_younger (requester : Txn.t) blockers =
  let must_die =
    List.exists
      (fun (blocker : Txn.t) ->
        (not blocker.Txn.doomed) && Txn.older blocker requester)
      blockers
  in
  if must_die then raise (Txn.Aborted Txn.Died)

let acquire t txn page mode =
  t.hooks.Cc_intf.charge_cc_request ();
  Lock_table.request t.locks txn page mode
    ~pre_block:(fun blockers -> die_if_younger txn blockers)
    ~on_block:(fun _ -> ())

let make (hooks : Cc_intf.hooks) : Cc_intf.node_cc =
  let blocking = Desim.Stats.Tally.create () in
  let t = { hooks; locks = Lock_table.create hooks.Cc_intf.eng ~blocking } in
  {
    algorithm = Params.Wait_die;
    cc_read = (fun txn page -> acquire t txn page Lock_table.S);
    cc_write = (fun txn page -> acquire t txn page Lock_table.X);
    cc_prepare = (fun txn -> not txn.Txn.doomed);
    cc_installed = (fun txn -> Lock_table.exclusive_pages t.locks txn);
    cc_commit =
      (fun txn ->
        Lock_table.release_all t.locks txn ~reject:(Txn.Aborted Txn.Peer_abort));
    cc_abort =
      (fun txn ->
        Lock_table.release_all t.locks txn ~reject:(Txn.Aborted Txn.Peer_abort));
    cc_edges = (fun () -> Lock_table.edges t.locks);
    cc_blocking = blocking;
  }
