(** Distributed two-phase locking (Section 2.2 of the paper): dynamic
    lock acquisition with read-to-write conversion, block-time local
    deadlock detection (youngest victim), locks held to commit/abort.
    Global deadlocks are handled by {!Snoop}. *)

(** [algorithm] relabels the manager for the O2PL variant, which shares
    this lock-manager implementation (its deferred replica write locks
    are a transaction-manager behaviour). *)
val make :
  ?algorithm:Ddbm_model.Params.cc_algorithm ->
  Ddbm_model.Cc_intf.hooks ->
  Ddbm_model.Cc_intf.node_cc
