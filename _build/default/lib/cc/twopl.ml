(** Distributed two-phase locking (Section 2.2).

    Cohorts take read locks as they read and convert them to write locks on
    update. Locks are held until commit or abort. Whenever a cohort blocks,
    a local deadlock detection pass runs over this node's waits-for graph;
    global deadlocks are left to the Snoop detector (see {!Snoop}). The
    victim is the transaction with the most recent initial startup time in
    the cycle; its abort is routed to its coordinator via
    [hooks.request_abort]. *)

open Ddbm_model

type t = { hooks : Cc_intf.hooks; locks : Lock_table.t }

let detect_local t (requester : Txn.t) =
  (* Victimize until no cycle through the requester remains. request_abort
     marks victims doomed synchronously, which [Wfg] treats as broken
     edges, so this loop terminates. *)
  let continue_ = ref true in
  while !continue_ do
    let graph = Wfg.of_edges (Lock_table.edges t.locks) in
    let removed = Hashtbl.create 4 in
    match Wfg.find_cycle_through graph requester ~removed with
    | None -> continue_ := false
    | Some cycle ->
        let victim = Wfg.youngest cycle in
        t.hooks.Cc_intf.request_abort victim Txn.Local_deadlock;
        if Txn.same_attempt victim requester then continue_ := false
  done

let acquire t txn page mode =
  t.hooks.Cc_intf.charge_cc_request ();
  Lock_table.request t.locks txn page mode ~on_block:(fun _blockers ->
      detect_local t txn)

(** [make hooks] builds the node manager; [algorithm] relabels it for the
    O2PL variant, which shares this implementation (the 2PL/O2PL
    difference — when remote replica copies are write-locked — lives in
    the transaction manager, not the lock manager). *)
let make ?(algorithm = Params.Twopl) (hooks : Cc_intf.hooks) :
    Cc_intf.node_cc =
  let blocking = Desim.Stats.Tally.create () in
  let t = { hooks; locks = Lock_table.create hooks.Cc_intf.eng ~blocking } in
  {
    algorithm;
    cc_read = (fun txn page -> acquire t txn page Lock_table.S);
    cc_write = (fun txn page -> acquire t txn page Lock_table.X);
    cc_prepare = (fun txn -> not txn.Txn.doomed);
    cc_installed = (fun txn -> Lock_table.exclusive_pages t.locks txn);
    cc_commit =
      (fun txn ->
        Lock_table.release_all t.locks txn ~reject:(Txn.Aborted Txn.Peer_abort));
    cc_abort =
      (fun txn ->
        Lock_table.release_all t.locks txn ~reject:(Txn.Aborted Txn.Peer_abort));
    cc_edges = (fun () -> Lock_table.edges t.locks);
    cc_blocking = blocking;
  }
