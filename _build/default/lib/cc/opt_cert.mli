(** Distributed timestamp-based optimistic concurrency control — the
    first certification algorithm of [Sinh85] (Section 2.5). Reads and
    writes run unhindered against local workspaces; at prepare time each
    cohort certifies its reads (version still current, no earlier
    certified uncommitted write) and writes (no later certified or
    committed read) atomically, using the globally unique timestamp the
    coordinator assigned for the commit. *)

val make : Ddbm_model.Cc_intf.hooks -> Ddbm_model.Cc_intf.node_cc
