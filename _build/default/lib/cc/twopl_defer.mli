(** 2PL with deferred write locks (extension, per [Care89] as cited by
    the paper's footnote 13): read locks during execution, write-lock
    upgrades during the first phase of commit. *)

val make : Ddbm_model.Cc_intf.hooks -> Ddbm_model.Cc_intf.node_cc
