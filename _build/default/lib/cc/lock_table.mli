(** Page-level lock manager with shared/exclusive modes, strict-FCFS
    queuing, and read-to-write conversion (upgrade) that jumps ahead of
    ordinary waiters — the locking substrate of both 2PL and wound-wait.

    Policy decisions (what to do when a request must wait) are delegated
    to the caller through the [on_block] callback, which fires after the
    request is enqueued and receives the transactions currently blocking
    it. *)

open Ddbm_model

type t

type mode = S | X

val mode_compatible : mode -> mode -> bool

(** [create eng ~blocking] records per-request blocking times into
    [blocking]. *)
val create : Desim.Engine.t -> blocking:Desim.Stats.Tally.t -> t

(** [request t txn page mode ~on_block] acquires [mode] on [page] for
    [txn], blocking the calling cohort process until granted. A request
    for a mode already covered by a held lock returns immediately; an
    [X] request while holding [S] is an upgrade, granted immediately iff
    [txn] is the sole holder and otherwise queued ahead of ordinary
    waiters. Raises whatever exception the waiter is rejected with when
    the transaction is aborted while blocked. *)
val request :
  ?pre_block:(Txn.t list -> unit) ->
  t ->
  Txn.t ->
  Ids.Page.t ->
  mode ->
  on_block:(Txn.t list -> unit) ->
  unit

(** Release every lock and waiting request of [txn]; its blocked requests
    are rejected with [reject]; newly grantable waiters are granted. *)
val release_all : t -> Txn.t -> reject:exn -> unit

(** Waits-for edges of this table: each waiter against its incompatible
    holders and incompatible waiters queued ahead of it. *)
val edges : t -> Cc_intf.edge list

(** Number of queued (blocked) requests. *)
val num_waiting : t -> int

(** Pages on which [txn] currently holds an exclusive lock — exactly the
    updates a lock-based scheme installs at commit. *)
val exclusive_pages : t -> Txn.t -> Ids.Page.t list

(** Current blockers of [txn]'s waiting request on [page] (testing). *)
val current_blockers : t -> Txn.t -> Ids.Page.t -> Txn.t list

(** Mode held by [txn] on [page], if any (testing). *)
val held : t -> Txn.t -> Ids.Page.t -> mode option
