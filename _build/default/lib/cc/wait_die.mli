(** Wait-die locking (extension): the deadlock-prevention counterpart of
    wound-wait from [Rose78] — older requesters wait, younger requesters
    abort themselves immediately. Not evaluated in the paper; provided
    for comparison (see the ext-algos bench). *)

val make : Ddbm_model.Cc_intf.hooks -> Ddbm_model.Cc_intf.node_cc
