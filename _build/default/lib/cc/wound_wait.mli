(** Distributed wound-wait locking (Section 2.3, [Rose78]): 2PL-style
    locking where an older transaction that must wait wounds (aborts) any
    younger transaction blocking it, unless the victim is already in the
    second phase of commit. Restarted transactions keep their original
    startup timestamp, so starvation is impossible. *)

val make : Ddbm_model.Cc_intf.hooks -> Ddbm_model.Cc_intf.node_cc
