(** Distributed wound-wait locking (Section 2.3, [Rose78]).

    Locking is identical to 2PL, but deadlocks are prevented with
    timestamps: when a cohort of transaction [T] must wait and any of its
    blockers is younger than [T] (later initial startup time), the younger
    transaction is wounded — an abort request is sent to its coordinator,
    which ignores the wound if the victim is already in the second phase of
    its commit protocol. Younger transactions simply wait for older ones.

    Restarted transactions keep their original startup timestamp, so a
    transaction always eventually becomes the oldest and cannot starve. *)

open Ddbm_model

type t = { hooks : Cc_intf.hooks; locks : Lock_table.t }

let wound_younger t (requester : Txn.t) blockers =
  List.iter
    (fun (blocker : Txn.t) ->
      if Txn.older requester blocker && not blocker.Txn.doomed then
        t.hooks.Cc_intf.request_abort blocker Txn.Wounded)
    blockers

let acquire t txn page mode =
  t.hooks.Cc_intf.charge_cc_request ();
  Lock_table.request t.locks txn page mode ~on_block:(fun blockers ->
      wound_younger t txn blockers)

let make (hooks : Cc_intf.hooks) : Cc_intf.node_cc =
  let blocking = Desim.Stats.Tally.create () in
  let t = { hooks; locks = Lock_table.create hooks.Cc_intf.eng ~blocking } in
  {
    algorithm = Params.Wound_wait;
    cc_read = (fun txn page -> acquire t txn page Lock_table.S);
    cc_write = (fun txn page -> acquire t txn page Lock_table.X);
    cc_prepare = (fun txn -> not txn.Txn.doomed);
    cc_installed = (fun txn -> Lock_table.exclusive_pages t.locks txn);
    cc_commit =
      (fun txn ->
        Lock_table.release_all t.locks txn ~reject:(Txn.Aborted Txn.Peer_abort));
    cc_abort =
      (fun txn ->
        Lock_table.release_all t.locks txn ~reject:(Txn.Aborted Txn.Peer_abort));
    cc_edges = (fun () -> Lock_table.edges t.locks);
    cc_blocking = blocking;
  }
