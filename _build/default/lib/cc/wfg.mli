(** Waits-for graphs and cycle detection, used by 2PL's block-time local
    deadlock detection and by the Snoop global detector. Vertices are
    transaction attempts; doomed attempts count as already removed. *)

open Ddbm_model

type t

val create : unit -> t

(** Add [waiter] waits-for [holder]. Self-edges are dropped. *)
val add_edge : t -> waiter:Txn.t -> holder:Txn.t -> unit

val of_edges : Cc_intf.edge list -> t

(** [find_cycle_through t start ~removed] is a cycle containing [start]
    (the list of its member transactions), ignoring doomed and removed
    vertices, or [None]. *)
val find_cycle_through :
  t -> Txn.t -> removed:(int * int, unit) Hashtbl.t -> Txn.t list option

(** Youngest member of a cycle: the most recent initial startup time —
    the paper's victim selection rule. Raises on an empty list. *)
val youngest : Txn.t list -> Txn.t

(** Repeatedly find a cycle anywhere, victimize its youngest member, and
    continue until acyclic; returns the victims. *)
val break_all_cycles : t -> Txn.t list
