(** Globally unique, totally ordered timestamps.

    Built from a simulated time plus a tie-breaking sequence number drawn
    from a shared allocator, as a real system would combine a clock with a
    site/sequence suffix. *)

type t = { time : float; uniq : int }

let compare a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.uniq b.uniq

let equal a b = compare a b = 0
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let ( < ) a b = compare a b < 0
let ( > ) a b = compare a b > 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let pp fmt t = Format.fprintf fmt "%.6f#%d" t.time t.uniq

(** Allocator of unique suffixes; one per simulation run. *)
module Clock = struct
  type ts = t
  type t = { mutable next : int }

  let create () = { next = 0 }

  let make t ~time =
    let uniq = t.next in
    t.next <- t.next + 1;
    { time; uniq }
end
