(** The source component: generates transaction access plans (Section 3.2).

    Each terminal belongs to a class determined by its index: the
    [num_terminals] terminals are split evenly into [num_relations] groups
    and group [i] generates transactions that access every partition of
    relation [i]. *)

open Ids

type t = {
  params : Params.t;
  catalog : Catalog.t;
  rng : Desim.Rng.t;
}

let create params catalog rng = { params; catalog; rng }

(** Relation accessed by transactions from [terminal]. *)
let relation_of_terminal t ~terminal =
  let w = t.params.Params.workload and d = t.params.Params.database in
  terminal * d.Params.num_relations / w.Params.num_terminals

(** Mean think time, exposed for the terminal loop. *)
let think_time t = t.params.Params.workload.Params.think_time

(** Draw the number of pages accessed in one partition: uniform integer in
    [mean/2, 3*mean/2], capped by the file size (footnote 12). *)
let draw_page_count t =
  let w = t.params.Params.workload in
  let mean = w.Params.pages_per_partition in
  let lo = Int.max 1 (mean / 2) and hi = 3 * mean / 2 in
  let hi = Int.min hi t.params.Params.database.Params.file_size in
  Desim.Rng.int_range t.rng ~lo ~hi

let draw_partition_ops t ~file =
  let d = t.params.Params.database and w = t.params.Params.workload in
  let k = draw_page_count t in
  let pages =
    Desim.Rng.sample_without_replacement t.rng ~n:d.Params.file_size ~k
  in
  (* Pages are accessed in ascending page order, as a partition scan
     would: this gives the approximate global lock-ordering discipline
     that keeps 2PL's deadlock rate at the modest levels the paper
     reports (see DESIGN.md). *)
  let pages = List.sort compare pages in
  List.map
    (fun index ->
      {
        Plan.page = Page.make ~file ~index;
        update = Desim.Rng.bool t.rng ~p:w.Params.write_prob;
      })
    pages

(** Generate a fresh access plan for a transaction from [terminal]: one
    cohort per node holding a primary of the terminal's relation, plus
    (under replication) update-application duties at every node holding a
    copy of an updated page — update-only cohorts are appended when such
    a node runs no primary accesses. *)
let generate_plan t ~terminal =
  let relation = relation_of_terminal t ~terminal in
  let nodes = Catalog.nodes_of_relation t.catalog ~relation in
  let primary_cohorts =
    List.map
      (fun node_ref ->
        let node =
          match node_ref with
          | Proc n -> n
          | Host -> invalid_arg "Workload: data stored at host"
        in
        let files = Catalog.files_at t.catalog ~relation ~node in
        let ops =
          List.concat_map (fun file -> draw_partition_ops t ~file) files
        in
        (node, ops))
      nodes
  in
  (* replica application sites for every updated page *)
  let applies : (int, Ids.Page.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (primary_node, ops) ->
      List.iter
        (fun (op : Plan.page_op) ->
          if op.Plan.update then
            List.iter
              (fun copy_node ->
                if copy_node <> primary_node then
                  Hashtbl.replace applies copy_node
                    (op.Plan.page
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt applies copy_node)))
              (Catalog.copy_nodes t.catalog ~file:op.Plan.page.Page.file))
        ops)
    primary_cohorts;
  let cohorts =
    List.map
      (fun (node, ops) ->
        let apply_ops =
          Option.value ~default:[] (Hashtbl.find_opt applies node)
        in
        Hashtbl.remove applies node;
        { Plan.node; ops; apply_ops })
      primary_cohorts
  in
  let update_only =
    Hashtbl.fold
      (fun node apply_ops acc ->
        { Plan.node; ops = []; apply_ops } :: acc)
      applies []
    |> List.sort (fun a b -> Int.compare a.Plan.node b.Plan.node)
  in
  { Plan.relation; cohorts = cohorts @ update_only }

(** Per-page processing cost draw (exponential, mean InstPerPage). *)
let draw_page_instructions t =
  Desim.Rng.exponential t.rng
    ~mean:t.params.Params.workload.Params.inst_per_page
