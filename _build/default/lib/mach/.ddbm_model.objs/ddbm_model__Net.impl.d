lib/mach/net.ml: Cpu Desim Ids
