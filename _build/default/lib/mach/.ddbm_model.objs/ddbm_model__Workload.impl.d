lib/mach/workload.ml: Catalog Desim Hashtbl Ids Int List Option Page Params Plan
