lib/mach/metrics.ml: Desim Engine Float Hashtbl List Option Stats Stdlib Txn
