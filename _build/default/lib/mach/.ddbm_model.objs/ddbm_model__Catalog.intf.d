lib/mach/catalog.mli: Ids Params
