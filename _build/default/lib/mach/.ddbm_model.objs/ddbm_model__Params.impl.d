lib/mach/params.ml: Result String
