lib/mach/node.ml: Array Cc_intf Cpu Desim Disk Format Ids Params Rng
