lib/mach/metrics.mli: Desim Txn
