lib/mach/txn.ml: Format Plan Timestamp
