lib/mach/plan.ml: Format Ids List Page
