lib/mach/net.mli: Desim Ids
