lib/mach/workload.mli: Catalog Desim Params Plan
