lib/mach/node.mli: Cc_intf Desim Ids Params
