lib/mach/timestamp.ml: Float Format Int Stdlib
