lib/mach/cc_intf.ml: Desim Ids Params Timestamp Txn
