lib/mach/catalog.ml: Array Hashtbl Ids List Params
