lib/mach/ids.ml: Format Hashtbl Int
