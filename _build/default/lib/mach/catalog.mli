(** File-to-node mapping (the FileLocations parameter of Table 1).

    Each relation's partitions are grouped into [partitioning_degree]
    chunks of consecutive partitions; chunk [c] of relation [i] is stored
    on processing node [(i + c) mod num_proc_nodes]. The rotation by
    relation index balances load exactly as in Sections 4.2-4.4 of the
    paper: degree 1 places relation [i] entirely at node [i mod n];
    degree [n] spreads every relation over all nodes. *)

type t

val create : Params.database -> t

(** Total number of files (relations x partitions). *)
val num_files : t -> int

(** File id of a relation's partition. *)
val file_id : Params.database -> relation:int -> partition:int -> int

(** Processing node holding the given file. *)
val node_of : t -> file:int -> Ids.node_ref

(** Distinct nodes holding partitions of [relation], in ascending
    partition order (the cohort activation order for sequential
    execution). *)
val nodes_of_relation : t -> relation:int -> Ids.node_ref list

(** Files of [relation] stored at processing node [node], ascending. *)
val files_at : t -> relation:int -> node:int -> int list

(** Nodes holding copies of [file], primary first ([Care88]
    read-one/write-all replication; a single-element list when
    replication is 1). *)
val copy_nodes : t -> file:int -> int list
