(** Identifier types shared across the machine model. *)

(** A node of the database machine: the single host node (terminals,
    coordinators) or one of the processing nodes (data, cohorts). *)
type node_ref = Host | Proc of int

let node_ref_equal a b =
  match (a, b) with
  | Host, Host -> true
  | Proc i, Proc j -> i = j
  | Host, Proc _ | Proc _, Host -> false

let pp_node_ref fmt = function
  | Host -> Format.pp_print_string fmt "host"
  | Proc i -> Format.fprintf fmt "proc%d" i

(** A page of a file; files model relation partitions. *)
module Page = struct
  type t = { file : int; index : int }

  let make ~file ~index = { file; index }
  let compare a b =
    let c = Int.compare a.file b.file in
    if c <> 0 then c else Int.compare a.index b.index

  let equal a b = compare a b = 0
  let hash t = (t.file * 1_000_003) + t.index
  let pp fmt t = Format.fprintf fmt "f%d/p%d" t.file t.index
end

(** Hashtable keyed by pages. *)
module Page_table = Hashtbl.Make (struct
  type t = Page.t

  let equal = Page.equal
  let hash = Page.hash
end)
