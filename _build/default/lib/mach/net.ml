(** The network manager (Section 3.5).

    A switch with negligible wire time: a message costs [inst_per_msg] CPU
    instructions at the sending node and again at the receiving node, both
    served in the CPU's high-priority FCFS message class. Local deliveries
    (src = dst) are free procedure calls. *)

open Desim

type t = {
  inst_per_msg : float;
  cpu_of : Ids.node_ref -> Cpu.t;
  mutable messages_sent : int;
}

let create ~inst_per_msg ~cpu_of = { inst_per_msg; cpu_of; messages_sent = 0 }

(** [send t ~src ~dst deliver]: blocks the calling process for the sender-
    side CPU cost, then (asynchronously) charges the receiver-side cost and
    invokes [deliver] at the destination. *)
let send t ~src ~dst deliver =
  if Ids.node_ref_equal src dst then deliver ()
  else begin
    t.messages_sent <- t.messages_sent + 1;
    Cpu.consume_priority (t.cpu_of src) ~instructions:t.inst_per_msg;
    Cpu.submit_priority (t.cpu_of dst) ~instructions:t.inst_per_msg deliver
  end

(** Like {!send} but fully asynchronous: usable outside process context
    (e.g. from an event callback); the sender-side cost is still charged
    to the sender's CPU. *)
let send_async t ~src ~dst deliver =
  if Ids.node_ref_equal src dst then deliver ()
  else begin
    t.messages_sent <- t.messages_sent + 1;
    Cpu.submit_priority (t.cpu_of src) ~instructions:t.inst_per_msg (fun () ->
        Cpu.submit_priority (t.cpu_of dst) ~instructions:t.inst_per_msg deliver)
  end

let messages_sent t = t.messages_sent
