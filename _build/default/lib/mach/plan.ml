(** Static access plan of a transaction, chosen by the source at submission
    time and reused verbatim on every restart (the paper "reruns the
    transaction"). *)

open Ids

type page_op = { page : Page.t; update : bool }

type cohort_plan = {
  node : int;  (** processing node index *)
  ops : page_op list;  (** primary-copy page accesses in execution order *)
  apply_ops : Ids.Page.t list;
      (** replica copies of pages updated by other cohorts that live at
          this node: this cohort must obtain write permission for them
          (at access time or at prepare time, depending on the algorithm)
          and install them at commit. Empty without replication. *)
}

type t = {
  relation : int;
  cohorts : cohort_plan list;  (** in activation order (for sequential) *)
}

let num_cohorts t = List.length t.cohorts

let total_reads t =
  List.fold_left (fun acc c -> acc + List.length c.ops) 0 t.cohorts

let total_writes t =
  List.fold_left
    (fun acc c ->
      acc + List.length (List.filter (fun op -> op.update) c.ops))
    0 t.cohorts

(** Replica applications across all cohorts (0 without replication). *)
let total_replica_applies t =
  List.fold_left (fun acc c -> acc + List.length c.apply_ops) 0 t.cohorts

let pp fmt t =
  Format.fprintf fmt "relation %d: %d cohorts, %d reads, %d writes" t.relation
    (num_cohorts t) (total_reads t) (total_writes t)
