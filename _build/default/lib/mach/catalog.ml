(** File-to-node mapping (the FileLocations parameter of Table 1).

    Each relation's [partitions_per_relation] partitions are grouped into
    [partitioning_degree] chunks of consecutive partitions; chunk [c] of
    relation [i] is stored on processing node [(i + c) mod num_proc_nodes].
    The rotation by relation index balances load across nodes exactly as in
    Sections 4.2-4.4 of the paper:

    - degree 1: relation i lives entirely at node (i mod n) — transactions
      on relation i run sequentially at one node;
    - degree = n (machine-size experiments): every relation is spread over
      all nodes, every transaction has one cohort per node;
    - degrees 2 and 4 on 8 nodes: the rotated placements of Section 4.4. *)

open Ids

type t = {
  params : Params.database;
  file_of : int -> int -> int;  (** relation -> partition -> file id *)
  node_of_file : int array;  (** file id -> processing node index *)
}

let file_id params ~relation ~partition =
  (relation * params.Params.partitions_per_relation) + partition

let create (params : Params.database) =
  let num_files = params.num_relations * params.partitions_per_relation in
  let chunk_size = params.partitions_per_relation / params.partitioning_degree in
  let node_of_file =
    Array.init num_files (fun f ->
        let relation = f / params.partitions_per_relation in
        let partition = f mod params.partitions_per_relation in
        let chunk = partition / chunk_size in
        (* start each relation at floor(relation * nodes / relations):
           identical to a plain rotation when nodes <= relations, and
           still load-balanced when the machine has more nodes than
           relations (e.g. the 16-node footnote-7 configuration) *)
        let start =
          relation * params.num_proc_nodes / params.num_relations
        in
        (start + chunk) mod params.num_proc_nodes)
  in
  {
    params;
    file_of = (fun relation partition -> file_id params ~relation ~partition);
    node_of_file;
  }

let num_files t =
  t.params.Params.num_relations * t.params.Params.partitions_per_relation

(** Processing node holding the given file. *)
let node_of t ~file = Proc t.node_of_file.(file)

(** Distinct nodes holding partitions of [relation], in ascending partition
    order (the cohort order for sequential execution). *)
let nodes_of_relation t ~relation =
  let p = t.params in
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  for partition = 0 to p.Params.partitions_per_relation - 1 do
    let f = t.file_of relation partition in
    let n = t.node_of_file.(f) in
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      order := n :: !order
    end
  done;
  List.rev_map (fun n -> Proc n) !order

(** Nodes holding copies of [file]: the primary first, then the
    additional copies on the following nodes (read-one/write-all
    replication per [Care88]; replication 1 means just the primary). *)
let copy_nodes t ~file =
  let p = t.params in
  let primary = t.node_of_file.(file) in
  List.init p.Params.replication (fun k ->
      (primary + k) mod p.Params.num_proc_nodes)

(** Files of [relation] stored at processing node [node]. *)
let files_at t ~relation ~node =
  let p = t.params in
  let acc = ref [] in
  for partition = p.Params.partitions_per_relation - 1 downto 0 do
    let f = t.file_of relation partition in
    if t.node_of_file.(f) = node then acc := f :: !acc
  done;
  !acc
