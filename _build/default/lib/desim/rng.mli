(** Deterministic pseudo-random number streams for simulation.

    Based on splitmix64, which is fast and has well-understood statistical
    properties. Every model component owns its own stream (split from a root
    seed) so that changing one component's consumption pattern does not
    perturb the others — the standard common-random-numbers discipline for
    comparing concurrency control algorithms under identical workloads. *)

type t

(** [create seed] is a fresh stream. Equal seeds yield equal streams. *)
val create : int -> t

(** [split t] derives an independent child stream; deterministic in the
    parent's current state. *)
val split : t -> t

(** Raw next 64-bit output. *)
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). Requires [lo <= hi]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponentially distributed value with the given mean (>= 0).
    [exponential t ~mean:0.] is 0. *)
val exponential : t -> mean:float -> float

(** Uniform integer in [0, n). Requires [n > 0]. *)
val int : t -> int -> int

(** Uniform integer in [lo, hi] inclusive. Requires [lo <= hi]. *)
val int_range : t -> lo:int -> hi:int -> int

(** Bernoulli trial: true with probability [p]. *)
val bool : t -> p:float -> bool

(** [sample_without_replacement t ~n ~k] is [k] distinct integers drawn
    uniformly from [0, n). Requires [0 <= k <= n]. Order is random. *)
val sample_without_replacement : t -> n:int -> k:int -> int list

(** Random permutation of [0, n). *)
val permutation : t -> int -> int array
