type 'a t = {
  msgs : 'a Queue.t;
  waiters : 'a Engine.resolver Queue.t;
}

let create () = { msgs = Queue.create (); waiters = Queue.create () }

let send t m =
  if Queue.is_empty t.waiters then Queue.push m t.msgs
  else
    let (r : _ Engine.resolver) = Queue.pop t.waiters in
    r.resolve m

let recv t =
  if not (Queue.is_empty t.msgs) then Queue.pop t.msgs
  else Engine.suspend (fun r -> Queue.push r t.waiters)

let try_recv t = if Queue.is_empty t.msgs then None else Some (Queue.pop t.msgs)

let length t = Queue.length t.msgs
