(** Process-oriented discrete-event simulation engine.

    Model code is written in direct style: a process is an ordinary OCaml
    function that calls {!wait} to let simulated time pass and {!suspend} to
    block until some other process resolves it. Both are implemented with
    OCaml 5 effect handlers, so there are no threads and the simulation is
    fully deterministic: events at equal times fire in scheduling order.

    All times are in simulated seconds. *)

type t

(** A cancellable scheduled event. *)
type handle

(** One-shot continuation of a suspended process. Calling [resolve] (or
    [reject]) more than once on the same resolver raises
    [Invalid_argument]. *)
type 'a resolver = private {
  resolve : 'a -> unit;  (** resume the process with a value *)
  reject : exn -> unit;  (** resume the process by raising [exn] in it *)
}

val create : unit -> t

(** Current simulated time. *)
val now : t -> float

(** [schedule t ~at f] runs [f] at simulated time [at] (>= now). The
    returned handle can cancel it before it fires. *)
val schedule : t -> at:float -> (unit -> unit) -> handle

(** [schedule_after t ~delay f] = [schedule t ~at:(now t +. delay) f]. *)
val schedule_after : t -> delay:float -> (unit -> unit) -> handle

val cancel : handle -> unit

(** [spawn t f] starts a new process executing [f ()] at the current time
    (it begins running when the scheduler reaches that event). Uncaught
    exceptions other than those injected via [reject] escape [run]. *)
val spawn : t -> ?name:string -> (unit -> unit) -> unit

(** Let simulated time advance by [delay]. Only valid inside a process. *)
val wait : float -> unit

(** Block the calling process until another party resolves it. The
    registration function receives the resolver and must stash it somewhere
    (a queue, a lock table, ...). Only valid inside a process. *)
val suspend : ('a resolver -> unit) -> 'a

(** Run until the event queue is empty, [until] is reached (events at later
    times stay queued and [now] becomes [until]), or {!stop} is called. *)
val run : ?until:float -> t -> unit

(** Make [run] return after the current event completes. *)
val stop : t -> unit

(** Number of events processed so far (for performance reporting). *)
val events_processed : t -> int

(** Raised when {!wait} or {!suspend} is called outside a process. *)
exception Not_in_process
