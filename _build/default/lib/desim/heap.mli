(** Array-based binary min-heap, specialized for discrete-event scheduling.

    Elements are ordered by a user-supplied total order. Ties must be broken
    by the caller (the simulation engine uses a monotone sequence number) so
    that event ordering is deterministic. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (strictly less = negative). *)
val create : cmp:('a -> 'a -> int) -> 'a t

(** Number of elements currently stored. *)
val size : 'a t -> int

val is_empty : 'a t -> bool

(** Insert an element. Amortized O(log n). *)
val push : 'a t -> 'a -> unit

(** Smallest element, or [None] when empty. Does not remove. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element, or [None] when empty. *)
val pop : 'a t -> 'a option

(** Remove all elements. *)
val clear : 'a t -> unit

(** Fold over elements in arbitrary (heap) order. *)
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
