(** Unbounded FIFO message queue with blocking receive.

    Multiple senders, multiple (queued) receivers. Used for node message
    dispatch loops and coordinator/cohort communication. *)

type 'a t

val create : unit -> 'a t

(** Enqueue a message; wakes the longest-waiting receiver, if any. *)
val send : 'a t -> 'a -> unit

(** Dequeue a message, blocking the calling process while empty. *)
val recv : 'a t -> 'a

(** [try_recv t] is [Some m] without blocking, or [None] when empty. *)
val try_recv : 'a t -> 'a option

(** Number of queued (undelivered) messages. *)
val length : 'a t -> int
