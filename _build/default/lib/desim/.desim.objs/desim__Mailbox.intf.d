lib/desim/mailbox.mli:
