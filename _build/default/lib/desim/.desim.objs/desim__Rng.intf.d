lib/desim/rng.mli:
