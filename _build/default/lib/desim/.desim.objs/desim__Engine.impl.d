lib/desim/engine.ml: Effect Fun Heap Printf
