lib/desim/engine.mli:
