lib/desim/ivar.ml: Engine List
