lib/desim/heap.mli:
