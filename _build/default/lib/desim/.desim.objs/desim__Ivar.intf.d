lib/desim/ivar.mli:
