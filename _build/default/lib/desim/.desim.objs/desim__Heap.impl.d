lib/desim/heap.ml: Array
