lib/desim/disk.ml: Engine Queue Rng Stats
