lib/desim/disk.mli: Engine Rng
