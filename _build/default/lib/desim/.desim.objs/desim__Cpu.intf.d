lib/desim/cpu.mli: Engine
