lib/desim/stats.mli:
