lib/desim/trace.mli: Engine
