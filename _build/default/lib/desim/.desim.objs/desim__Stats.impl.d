lib/desim/stats.ml: Array List
