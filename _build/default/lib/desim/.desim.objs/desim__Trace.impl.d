lib/desim/trace.ml: Engine List Printf Queue
