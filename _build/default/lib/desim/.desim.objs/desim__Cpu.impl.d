lib/desim/cpu.ml: Engine Float List Queue Stats
