lib/desim/rng.ml: Array Hashtbl Int64
