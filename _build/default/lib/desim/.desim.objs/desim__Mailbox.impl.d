lib/desim/mailbox.ml: Engine Queue
