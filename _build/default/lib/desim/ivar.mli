(** Write-once synchronization variable.

    Processes block in {!read} until someone calls {!fill} (all waiters are
    then resumed with the value) or {!poison} (all waiters are resumed by
    raising the exception). *)

type 'a t

val create : unit -> 'a t

(** True once filled (not poisoned). *)
val is_filled : 'a t -> bool

(** [fill t v] resolves all current and future readers with [v].
    Raises [Invalid_argument] if already filled or poisoned. *)
val fill : 'a t -> 'a -> unit

(** [poison t e] rejects all current and future readers with [e].
    Raises [Invalid_argument] if already filled or poisoned. *)
val poison : 'a t -> exn -> unit

(** Block until filled; returns the value (or raises the poison exception).
    Only valid inside a simulation process. *)
val read : 'a t -> 'a

(** [peek t] is [Some v] if filled, [None] otherwise (poisoned included). *)
val peek : 'a t -> 'a option
