type 'a state =
  | Empty of 'a Engine.resolver list
  | Full of 'a
  | Poisoned of exn

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let is_filled t = match t.state with Full _ -> true | _ -> false

let fill t v =
  match t.state with
  | Empty waiters ->
      t.state <- Full v;
      List.iter (fun (r : _ Engine.resolver) -> r.resolve v) (List.rev waiters)
  | Full _ | Poisoned _ -> invalid_arg "Ivar.fill: already resolved"

let poison t e =
  match t.state with
  | Empty waiters ->
      t.state <- Poisoned e;
      List.iter (fun (r : _ Engine.resolver) -> r.reject e) (List.rev waiters)
  | Full _ | Poisoned _ -> invalid_arg "Ivar.poison: already resolved"

let read t =
  match t.state with
  | Full v -> v
  | Poisoned e -> raise e
  | Empty _ ->
      Engine.suspend (fun r ->
          match t.state with
          | Empty waiters -> t.state <- Empty (r :: waiters)
          | Full v -> r.resolve v
          | Poisoned e -> r.reject e)

let peek t = match t.state with Full v -> Some v | Empty _ | Poisoned _ -> None
