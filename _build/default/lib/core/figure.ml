(** Data representation for reproduced figures: labelled series of (x, y)
    points, plus pretty-printing as the tables the bench harness emits. *)

type point = { x : float; y : float }

type series = { label : string; points : point list }

type t = {
  id : string;  (** e.g. "fig2" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

let xs t =
  match t.series with
  | [] -> []
  | s :: _ -> List.map (fun p -> p.x) s.points

(** Value of [series] at [x], if present. *)
let value_at series x =
  List.find_map
    (fun p -> if Float.equal p.x x then Some p.y else None)
    series.points

let number fmt v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000. then Printf.sprintf "%.0f" v
  else Printf.sprintf fmt v

(** Render as an aligned text table: one row per x, one column per series. *)
let to_table t =
  let buf = Buffer.create 1024 in
  let xs = xs t in
  let headers = t.xlabel :: List.map (fun s -> s.label) t.series in
  let rows =
    List.map
      (fun x ->
        number "%.4g" x
        :: List.map
             (fun s ->
               match value_at s x with
               | Some y -> number "%.4g" y
               | None -> "-")
             t.series)
      xs
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let pad w s = String.make (Stdlib.max 0 (w - String.length s)) ' ' ^ s in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s ==\n   (y = %s)\n" t.id t.title t.ylabel);
  emit_row headers;
  emit_row (List.map (fun w -> String.make w '-') widths);
  List.iter emit_row rows;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat ","
       (t.xlabel :: List.map (fun s -> s.label) t.series));
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match value_at s x with
          | Some y -> Buffer.add_string buf (Printf.sprintf "%g" y)
          | None -> ())
        t.series;
      Buffer.add_char buf '\n')
    (xs t);
  Buffer.contents buf

let print t = print_string (to_table t)
