(** End-to-end serializability auditor.

    The machine (with {!Machine.enable_audit}) records, for every
    committed transaction, the version of each logical page it read (the
    page's install counter at the instant the access permission was
    granted) and the versions its commit installed. {!check} then builds
    the multiversion serialization graph — ww: writer of [v] precedes
    writer of [v+1]; wr: writer of [v] precedes readers of [v]; rw:
    readers of [v] precede the writer of [v+1] — and verifies acyclicity
    over the committed transactions, proving the run serializable.
    Thomas-rule dropped writes install nothing and simply do not appear;
    aborted attempts leave no trace. *)

open Ddbm_model

type t

val create : unit -> t

(** The cohort's access permission for a page was granted; the version it
    observes is captured. Must be called atomically with the grant (no
    simulated time in between). *)
val record_read : t -> Txn.t -> Ids.Page.t -> unit

(** The cohort's commit installed its update of the page (primary copies
    only under replication). Must be called atomically with the CC-level
    install. *)
val record_install : t -> Txn.t -> Ids.Page.t -> unit

val record_commit : t -> Txn.t -> unit
val record_abort : t -> Txn.t -> unit

(** Committed transactions recorded so far. *)
val committed_count : t -> int

(** [Ok n]: the committed history over [n] transactions is (multiversion
    view-) serializable; [Error msg] describes a cycle. *)
val check : t -> (int, string) result
