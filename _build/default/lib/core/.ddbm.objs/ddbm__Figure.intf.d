lib/core/figure.mli:
