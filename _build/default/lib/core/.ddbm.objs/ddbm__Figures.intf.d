lib/core/figures.mli: Experiment Figure
