lib/core/audit.mli: Ddbm_model Ids Txn
