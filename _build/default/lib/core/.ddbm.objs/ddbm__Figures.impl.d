lib/core/figures.ml: Ddbm_model Experiment Figure Float List Params Printf Sim_result
