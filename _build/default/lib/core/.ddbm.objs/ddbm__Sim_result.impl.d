lib/core/sim_result.ml: Ddbm_model Format Params Printf
