lib/core/messages.ml: Ddbm_model Desim Hashtbl Mailbox Txn
