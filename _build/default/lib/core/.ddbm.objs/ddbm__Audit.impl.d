lib/core/audit.ml: Ddbm_model Hashtbl Ids List Option Page Page_table Printf Set Txn
