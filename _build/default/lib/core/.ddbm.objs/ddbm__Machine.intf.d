lib/core/machine.mli: Audit Ddbm_model Desim Sim_result
