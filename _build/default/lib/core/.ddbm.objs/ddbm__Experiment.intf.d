lib/core/experiment.mli: Ddbm_model Hashtbl Params Sim_result
