lib/core/experiment.ml: Ddbm_model Desim Hashtbl Int List Machine Params Printf Sim_result
