lib/core/figure.ml: Buffer Float List Printf Stdlib String
