(** Labelled series of (x, y) points — one reproduced figure — with
    aligned-table and CSV rendering for the bench harness. *)

type point = { x : float; y : float }
type series = { label : string; points : point list }

type t = {
  id : string;  (** e.g. "fig5" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

(** X values, taken from the first series. *)
val xs : t -> float list

(** Value of a series at an x, if present. *)
val value_at : series -> float -> float option

(** Aligned text table: one row per x, one column per series. *)
val to_table : t -> string

val to_csv : t -> string

(** [print t] writes {!to_table} to stdout. *)
val print : t -> unit
