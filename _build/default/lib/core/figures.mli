(** Reproduction of every figure of the paper's evaluation section, plus
    ablations and extensions. Figure ids match the paper ("fig2" ...
    "fig17"), with "fig4n"/"fig5n"/"fig16n"/"fig16s"/"fig17s" for the
    variants described in the running text and "abl-*" / "ext-*" for
    studies beyond the paper. See EXPERIMENTS.md for the full index. *)

type generator =
  Experiment.cache -> profile:Experiment.profile -> thinks:float list ->
  Figure.t

(** All generators in presentation order. *)
val all : (string * generator) list

val find : string -> generator option
