(** Coordinator/cohort message protocol.

    One coordinator mailbox and one mailbox per cohort exist per
    transaction attempt, so messages can never leak between attempts. The
    only cross-attempt traffic, {!coord_msg.Abort_request}, carries the
    target attempt and is dropped at routing time when stale. *)

open Desim
open Ddbm_model

(** Coordinator -> cohort. *)
type cohort_msg =
  | Do_prepare  (** start phase one; [Txn.commit_ts] is already assigned *)
  | Do_commit
  | Do_abort

(** Cohort (or CC manager) -> coordinator. *)
type coord_msg =
  | Work_done of int  (** cohort at node finished its reads and writes *)
  | Cohort_aborted of int * Txn.abort_reason
      (** cohort self-aborted (e.g. BTO rejection) *)
  | Vote of int * bool
  | Done_ack of int  (** final acknowledgement of commit or abort *)
  | Abort_request of Txn.t * Txn.abort_reason
      (** a CC manager somewhere demands this transaction's abort *)

(** Per-attempt runtime shared between the coordinator and the message
    routing layer. *)
type attempt_runtime = {
  txn : Txn.t;
  coord_mb : coord_msg Mailbox.t;
  cohort_mbs : (int, cohort_msg Mailbox.t) Hashtbl.t;  (** node -> mailbox *)
}

let make_runtime txn =
  { txn; coord_mb = Mailbox.create (); cohort_mbs = Hashtbl.create 8 }
