(** Output of one simulation run: the paper's metrics (Section 4.1) plus
    diagnostics. *)

open Ddbm_model

type t = {
  algorithm : Params.cc_algorithm;
  params : Params.t;
  throughput : float;  (** committed transactions per second *)
  mean_response : float;  (** seconds, origination to successful completion *)
  response_ci95 : float;  (** batch-means 95% half-width *)
  response_p50 : float;
  response_p95 : float;
  commits : int;
  aborts : int;
  abort_ratio : float;  (** aborts per commit *)
  abort_reasons : (string * int) list;
  mean_blocking : float;  (** mean CC blocking time per blocked request *)
  blocked_requests : int;
  proc_cpu_util : float;  (** mean over processing nodes *)
  proc_disk_util : float;  (** mean over all processing-node disks *)
  host_cpu_util : float;
  mean_active : float;  (** time-average number of in-flight transactions *)
  messages : int;
  sim_events : int;
  sim_end : float;
  wall_seconds : float;
}

let algorithm_name t = Params.cc_algorithm_name t.algorithm

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s: tput %.3f tx/s, resp %.3f s (±%.3f), %d commits, %d aborts \
     (ratio %.3f)@ cpu %.2f disk %.2f host-cpu %.2f, blocking %.4f s \
     (%d blocks), active %.1f, %d msgs@]"
    (algorithm_name t) t.throughput t.mean_response t.response_ci95 t.commits
    t.aborts t.abort_ratio t.proc_cpu_util t.proc_disk_util t.host_cpu_util
    t.mean_blocking t.blocked_requests t.mean_active t.messages

(** CSV header matching {!to_csv_row}. *)
let csv_header =
  "algorithm,think_time,proc_nodes,degree,file_size,inst_per_startup,\
   inst_per_msg,throughput,mean_response,response_ci95,response_p50,\
   response_p95,commits,aborts,\
   abort_ratio,mean_blocking,proc_cpu_util,proc_disk_util,host_cpu_util,\
   mean_active,messages"

let to_csv_row t =
  let p = t.params in
  Printf.sprintf
    "%s,%g,%d,%d,%d,%g,%g,%.5f,%.5f,%.5f,%.5f,%.5f,%d,%d,%.5f,%.5f,%.4f,%.4f,%.4f,%.3f,%d"
    (algorithm_name t) p.Params.workload.Params.think_time
    p.Params.database.Params.num_proc_nodes
    p.Params.database.Params.partitioning_degree
    p.Params.database.Params.file_size
    p.Params.resources.Params.inst_per_startup
    p.Params.resources.Params.inst_per_msg t.throughput t.mean_response
    t.response_ci95 t.response_p50 t.response_p95 t.commits t.aborts t.abort_ratio t.mean_blocking
    t.proc_cpu_util t.proc_disk_util t.host_cpu_util t.mean_active t.messages
