(* ddbm-lint: determinism-hazard and domain-safety static analysis over
   the simulator.

   Usage: ddbm_lint [--json] [--race] [--rules D7,D8] [--baseline FILE]
                    [--no-baseline] [PATH...]

   Exit status: 0 clean, 1 non-baselined findings, 2 usage/IO error. *)

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let parse_rules spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> not (String.equal s ""))
  in
  List.map
    (fun tok ->
      match Lint.Finding.rule_of_string tok with
      | Some rule -> rule
      | None ->
          prerr_endline ("ddbm-lint: unknown rule " ^ tok);
          exit 2)
    tokens

let () =
  let json = ref false in
  let race = ref false in
  let rules = ref None in
  let baseline = ref "lint.baseline" in
  let no_baseline = ref false in
  let roots = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable report on stdout");
      ( "--race",
        Arg.Set race,
        " run the whole-program domain-safety analysis (rules D7-D9)" );
      ( "--rules",
        Arg.String (fun s -> rules := Some (parse_rules s)),
        "LIST restrict the report to a comma-separated rule list (codes \
         or names, e.g. D7,D8 or shared-mutable)" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE baseline of accepted findings (default: lint.baseline)" );
      ( "--no-baseline",
        Arg.Set no_baseline,
        " ignore the baseline file entirely" );
      ( "--list-rules",
        Arg.Unit
          (fun () ->
            List.iter
              (fun r ->
                Printf.printf "%s %-16s %s\n" (Lint.Finding.code r)
                  (Lint.Finding.name r)
                  (Lint.Finding.describe r))
              Lint.Finding.all_rules;
            exit 0),
        " print the rule catalogue and exit" );
    ]
  in
  let usage = "ddbm_lint [options] [PATH...]" in
  Arg.parse spec (fun path -> roots := path :: !roots) usage;
  let roots =
    match List.rev !roots with [] -> default_roots | explicit -> explicit
  in
  let baseline =
    if !no_baseline then None
    else if Sys.file_exists !baseline then Some !baseline
    else None
  in
  match
    Lint.Driver.run ?baseline ~race:!race ?rules:!rules ~roots ()
  with
  | Error msg ->
      prerr_endline ("ddbm-lint: " ^ msg);
      exit 2
  | Ok report ->
      print_string
        (if !json then Lint.Driver.render_json report
         else Lint.Driver.render_text report);
      exit (if Lint.Driver.clean report then 0 else 1)
