(* Command-line front end: run one simulation of the distributed database
   machine and print its metrics, or sweep think times. *)

open Cmdliner
open Ddbm_model

let algorithm_conv =
  let parse s =
    match Params.cc_algorithm_of_string s with
    | Some a -> Ok a
    | None ->
        Error (`Msg (Printf.sprintf "unknown algorithm %S (2pl|ww|bto|opt|no_dc)" s))
  in
  let print fmt a = Format.pp_print_string fmt (Params.cc_algorithm_name a) in
  Arg.conv (parse, print)

let faults_conv =
  let parse s =
    match Fault_plan.of_spec s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  let print fmt p = Format.pp_print_string fmt (Fault_plan.to_spec p) in
  Arg.conv (parse, print)

let arrivals_conv =
  let parse s =
    match Arrival.of_spec s with Ok a -> Ok a | Error e -> Error (`Msg e)
  in
  let print fmt a = Format.pp_print_string fmt (Arrival.to_spec a) in
  Arg.conv (parse, print)

let params_term =
  let open Term.Syntax in
  let+ algorithm =
    Arg.(
      value
      & opt algorithm_conv Params.Twopl
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "Concurrency control algorithm: 2pl, ww, bto, opt, no_dc, or \
             the extensions wd (wait-die), 2pl-d (deferred write locks) \
             and o2pl (deferred replica write locks).")
  and+ nodes =
    Arg.(
      value & opt int 8
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of processing nodes.")
  and+ degree =
    Arg.(
      value & opt (some int) None
      & info [ "d"; "degree" ] ~docv:"D"
          ~doc:
            "Partitioning degree (1, 2, 4 or 8): how many nodes each \
             relation is declustered across. Defaults to the node count.")
  and+ think =
    Arg.(
      value & opt float 0.
      & info [ "t"; "think" ] ~docv:"SECONDS" ~doc:"Mean terminal think time.")
  and+ file_size =
    Arg.(
      value & opt int 300
      & info [ "file-size" ] ~docv:"PAGES" ~doc:"Pages per partition file.")
  and+ replication =
    Arg.(
      value & opt int 1
      & info [ "replication" ] ~docv:"COPIES"
          ~doc:"Copies of each file (read-one/write-all; 1 = none).")
  and+ terminals =
    Arg.(
      value & opt int 128
      & info [ "terminals" ] ~docv:"N" ~doc:"Number of terminals at the host.")
  and+ startup =
    Arg.(
      value & opt float 2_000.
      & info [ "startup-cost" ] ~docv:"INSTR"
          ~doc:"CPU instructions to start a process (InstPerStartup).")
  and+ msg_cost =
    Arg.(
      value & opt float 1_000.
      & info [ "msg-cost" ] ~docv:"INSTR"
          ~doc:"CPU instructions per message end (InstPerMsg).")
  and+ sequential =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:"Execute cohorts sequentially (RPC style) instead of in \
                parallel.")
  and+ logging =
    Arg.(
      value & flag
      & info [ "logging" ]
          ~doc:"Model forced log writes at prepare (off by default, per \
                the paper's footnote 5).")
  and+ log_disk =
    Arg.(
      value & flag
      & info [ "log-disk" ]
          ~doc:"Model a per-node log disk: cohorts append write-ahead-log \
                records and block on FCFS log forces, and recovery \
                replays the durable log after a crash.")
  and+ log_force =
    Arg.(
      value
      & opt (enum [ ("prepare", Params.At_prepare); ("commit", Params.At_commit) ])
          Params.At_prepare
      & info [ "log-force" ] ~docv:"POLICY"
          ~doc:
            "Log force policy with --log-disk: 'prepare' (default) forces \
             only the prepare record before voting; 'commit' additionally \
             forces the commit record before acknowledging.")
  and+ replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ] ~docv:"K"
          ~doc:
            "Ship each updating cohort's write-set to $(docv) backup \
             nodes at work-done; when the primary crashes mid-transaction \
             the coordinator fails over to a live backup instead of \
             aborting (0 = off).")
  and+ recovery_jobs =
    Arg.(
      value & opt int 1
      & info [ "recovery-jobs" ] ~docv:"N"
          ~doc:
            "Redo chains replayed concurrently during crash recovery \
             (with --log-disk). 1 (default) is the serial redo pass; with \
             $(docv) > 1 the dependency records logged with each update \
             partition the commit-decided set into independent chains \
             replayed on $(docv) worker fibers. A torn log tail degrades \
             the pass back to serial physical redo.")
  and+ warmup =
    Arg.(
      value & opt float 60.
      & info [ "warmup" ] ~docv:"SECONDS" ~doc:"Warm-up period to discard.")
  and+ measure =
    Arg.(
      value & opt float 600.
      & info [ "measure" ] ~docv:"SECONDS" ~doc:"Measurement window length.")
  and+ seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  and+ faults =
    Arg.(
      value
      & opt faults_conv Fault_plan.zero
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault plan, e.g. \
             'loss=0.05,dup=0.01,delay=0.002,crash=0\\@10+5,crash=host\\@30+2,\\
             crash-rate=0.01,mttr=2,timeout=1,timeout-cap=8,retries=4,\\
             fault-seed=7'. Message-loss/duplication/extra-delay \
             probabilities apply to commit-protocol traffic; crash=TGT\\@AT+DUR \
             downs host or procN at time AT for DUR seconds; crash-rate \
             adds Poisson crashes with mean repair time mttr; torn-tail=P \
             tears the WAL's dropped volatile tail at a crash with \
             probability P (recovery degrades to serial physical redo); \
             recrash=P crashes a node again during its own recovery with \
             probability P (recovery is re-entrant). All faults \
             draw from fault-seed only, so runs replay bit-for-bit.")
  and+ arrivals =
    Arg.(
      value
      & opt arrivals_conv Arrival.zero
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Open-loop arrival process + admission control, replacing the \
             closed-loop terminals, e.g. 'qps=50,cap=64,mpl=16' \
             (constant-rate Poisson) or \
             'profile=ramp:0..80/30,hold:80/60,spike:20^300/10'. Profile \
             segments: hold:R/D, ramp:A..B/D, sine:M~A/P/D (diurnal), \
             spike:B^P/D (flash crowd). Admission keys: cap=N (queue \
             capacity), shed=newest|oldest (full-queue policy), \
             deadline=D (drop queued arrivals older than D), mpl=N (max \
             in-flight; 0 = unlimited), retry-base=B/retry-cap=C \
             (capped-exponential restart backoff). Arrivals draw from a \
             dedicated RNG stream, so runs replay bit-for-bit; the \
             default is the paper's closed loop.")
  in
  let degree = Option.value degree ~default:nodes in
  let default = Params.default in
  {
    Params.database =
      {
        default.Params.database with
        Params.num_proc_nodes = nodes;
        partitioning_degree = degree;
        file_size;
        replication;
      };
    workload =
      {
        default.Params.workload with
        Params.think_time = think;
        num_terminals = terminals;
        exec_pattern = (if sequential then Params.Sequential else Params.Parallel);
      };
    resources =
      {
        default.Params.resources with
        Params.inst_per_startup = startup;
        inst_per_msg = msg_cost;
        model_logging = logging;
      };
    cc = { default.Params.cc with Params.algorithm };
    run = { default.Params.run with Params.seed; warmup; measure };
    durability =
      {
        Params.default_durability with
        Params.log_disk;
        log_force;
        replicas;
        recovery_jobs;
      };
    faults;
    arrivals;
  }

(* --- observability ------------------------------------------------- *)

let obs_flags =
  let open Term.Syntax in
  let+ trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the typed event trace to $(docv): Chrome trace_event \
             JSON (openable at ui.perfetto.dev or chrome://tracing) by \
             default, or one JSON object per event when $(docv) ends in \
             .jsonl.")
  and+ sample_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "sample-interval" ] ~docv:"SECONDS"
          ~doc:
            "Emit a time-series sample (active transactions, per-node \
             CPU/disk utilization, queue lengths) into the trace every \
             $(docv) simulated seconds.")
  and+ metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the end-of-run metric registry — counters, per-node \
             utilization/queue rollups, and tail-latency histograms \
             (p50/p90/p95/p99/p999 for response time, every \
             decomposition component, 2PC in-doubt, WAL force, \
             recovery) — as Prometheus text at $(docv) plus a JSON \
             sibling ($(docv) with a .json extension; pass a .json \
             path to swap the two).")
  in
  (trace_out, sample_interval, metrics_out)

(* [--metrics-out FILE] writes both exposition formats: Prometheus text
   and JSON, at sibling paths derived from FILE's extension. *)
let metrics_paths path =
  if Filename.check_suffix path ".json" then
    (Filename.remove_extension path ^ ".prom", path)
  else (path, Filename.remove_extension path ^ ".json")

let write_metrics m path =
  let reg = Ddbm.Machine.registry m in
  let prom_path, json_path = metrics_paths path in
  let write p s =
    let oc = open_out p in
    output_string oc s;
    close_out oc
  in
  write prom_path (Metric.to_prometheus reg);
  write json_path (Metric.to_json reg);
  (prom_path, json_path)

(* Open the trace file chosen by [--trace-out], pick the exporter by
   extension, attach it to [m]'s typed-event tracer, and return the
   finalizer that terminates and closes the file. *)
let attach_trace_file m ?num_nodes path =
  let tracer = Ddbm.Machine.enable_events m in
  let oc = open_out path in
  let out = output_string oc in
  if Filename.check_suffix path ".jsonl" then begin
    Tracer.attach tracer (Ddbm.Trace_export.jsonl_sink out);
    fun () -> close_out oc
  end
  else begin
    let chrome = Ddbm.Trace_export.Chrome.create ?num_nodes out in
    Tracer.attach tracer (Ddbm.Trace_export.Chrome.sink chrome);
    fun () ->
      Ddbm.Trace_export.Chrome.close chrome;
      close_out oc
  end

(* One run with the observability flags applied; equivalent to
   [Machine.run] when all are off. *)
let run_observed ~trace_out ~sample_interval ~metrics_out (params : Params.t) =
  match (trace_out, sample_interval, metrics_out) with
  | None, None, None -> Ddbm.Machine.run params
  | _ ->
      let m = Ddbm.Machine.create params in
      Option.iter
        (fun interval -> Ddbm.Machine.enable_sampler m ~interval)
        sample_interval;
      let close =
        match trace_out with
        | None -> fun () -> ()
        | Some path ->
            attach_trace_file m
              ~num_nodes:params.Params.database.Params.num_proc_nodes
              path
      in
      let result =
        Fun.protect ~finally:close (fun () -> Ddbm.Machine.execute m)
      in
      Option.iter
        (fun path -> ignore (write_metrics m path : string * string))
        metrics_out;
      result

(* Derive a per-run trace filename: "trace.json" + "-2pl-t4" ->
   "trace-2pl-t4.json". Used when one invocation performs several runs. *)
let with_suffix path suffix =
  match Filename.extension path with
  | "" -> path ^ suffix
  | ext -> Filename.remove_extension path ^ suffix ^ ext

(* --- parallelism --------------------------------------------------- *)

let jobs_term =
  let open Term.Syntax in
  let+ jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel simulation batches (default: the \
             number of cores). Every per-seed result is bit-identical to \
             --jobs 1; only wall-clock time changes.")
  in
  Par.Pool.create ?jobs ()

(* --- commands ------------------------------------------------------ *)

let run_cmd =
  let doc = "Run one simulation and print its metrics." in
  let term =
    let open Term.Syntax in
    let+ params = params_term
    and+ csv =
      Arg.(value & flag & info [ "csv" ] ~doc:"Print a CSV row instead.")
    and+ replicates =
      Arg.(
        value & opt int 1
        & info [ "r"; "replicates" ] ~docv:"N"
            ~doc:"Run N independent replicates (seed, seed+1, ...) and \
                  report mean ± 95% CI across them.")
    and+ trace_out, sample_interval, metrics_out = obs_flags in
    if csv then print_endline Ddbm.Sim_result.csv_header;
    let tput = Desim.Stats.Tally.create () in
    let resp = Desim.Stats.Tally.create () in
    for i = 0 to replicates - 1 do
      let params =
        {
          params with
          Params.run =
            {
              params.Params.run with
              Params.seed = params.Params.run.Params.seed + i;
            };
        }
      in
      let per_replicate out =
        (* one file per replicate *)
        if replicates = 1 then out
        else
          Option.map (fun path -> with_suffix path (Printf.sprintf "-r%d" i)) out
      in
      let trace_out = per_replicate trace_out in
      let metrics_out = per_replicate metrics_out in
      let result = run_observed ~trace_out ~sample_interval ~metrics_out params in
      Desim.Stats.Tally.add tput result.Ddbm.Sim_result.throughput;
      Desim.Stats.Tally.add resp result.Ddbm.Sim_result.mean_response;
      if csv then print_endline (Ddbm.Sim_result.to_csv_row result)
      else begin
        Format.printf "%a@." Ddbm.Sim_result.pp result;
        Format.printf "abort reasons:";
        List.iter
          (fun (name, n) -> Format.printf " %s=%d" name n)
          result.Ddbm.Sim_result.abort_reasons;
        Format.printf
          "@.sim events: %d, simulated %.0f s, wall %.2f s (%.0f events/s, \
           heap high-water %d words)@."
          result.Ddbm.Sim_result.sim_events result.Ddbm.Sim_result.sim_end
          result.Ddbm.Sim_result.wall_seconds
          result.Ddbm.Sim_result.events_per_sec
          result.Ddbm.Sim_result.top_heap_words;
        Option.iter
          (fun path -> Format.printf "trace written to %s@." path)
          trace_out;
        Option.iter
          (fun path ->
            let prom, json = metrics_paths path in
            Format.printf "metrics written to %s and %s@." prom json)
          metrics_out
      end
    done;
    if replicates > 1 && not csv then
      Format.printf
        "@.across %d replicates: throughput %.3f ± %.3f tx/s, response \
         %.3f ± %.3f s@."
        replicates
        (Desim.Stats.Tally.mean tput)
        (Desim.Stats.Tally.ci95 tput)
        (Desim.Stats.Tally.mean resp)
        (Desim.Stats.Tally.ci95 resp)
  in
  Cmd.v (Cmd.info "run" ~doc) term

let sweep_cmd =
  let doc = "Sweep think time for every algorithm; print CSV rows." in
  let term =
    let open Term.Syntax in
    let+ params = params_term
    and+ thinks =
      Arg.(
        value
        & opt (list float) [ 0.; 2.; 4.; 8.; 12.; 24.; 48.; 120. ]
        & info [ "thinks" ] ~docv:"T1,T2,..."
            ~doc:"Think times to sweep (seconds).")
    and+ trace_out, sample_interval, metrics_out = obs_flags
    and+ pool = jobs_term in
    print_endline Ddbm.Sim_result.csv_header;
    (* The sweep points are independent (seed, params) runs, so they fan
       out over the pool; results print in sweep order regardless of job
       count, and per-point trace files (distinct paths) are written by
       whichever worker runs the point. *)
    let points =
      List.concat_map
        (fun algorithm -> List.map (fun think -> (algorithm, think)) thinks)
        [ Params.No_dc; Params.Twopl; Params.Bto; Params.Wound_wait; Params.Opt ]
    in
    let results =
      Par.Pool.map pool
        (fun (algorithm, think) ->
          let params =
            {
              params with
              Params.workload =
                { params.Params.workload with Params.think_time = think };
              cc = { params.Params.cc with Params.algorithm };
            }
          in
          let per_point out =
            (* one file per (algorithm, think time) point *)
            Option.map
              (fun path ->
                with_suffix path
                  (Printf.sprintf "-%s-t%g"
                     (Params.cc_algorithm_name algorithm)
                     think))
              out
          in
          let trace_out = per_point trace_out in
          let metrics_out = per_point metrics_out in
          run_observed ~trace_out ~sample_interval ~metrics_out params)
        points
    in
    List.iter (fun r -> print_endline (Ddbm.Sim_result.to_csv_row r)) results
  in
  Cmd.v (Cmd.info "sweep" ~doc) term

let check_cmd =
  let doc =
    "Run the cross-algorithm conformance sweep: deterministically \
     generated configurations, each checked for serializability, metric \
     invariants, bit-for-bit determinism and workload agreement across \
     every registered algorithm. Configurations fan out over --jobs \
     worker domains; the verdict is independent of job count. Exits 1 \
     on the first failing configuration."
  in
  let term =
    let open Term.Syntax in
    let+ configs =
      Arg.(
        value & opt int 25
        & info [ "configs" ] ~docv:"N"
            ~doc:"Number of generated configurations to check.")
    and+ gen_seed =
      Arg.(
        value & opt int 0xC0DE
        & info [ "gen-seed" ] ~docv:"SEED"
            ~doc:"Seed for the configuration generator.")
    and+ artifact_dir =
      Arg.(
        value
        & opt (some string) None
        & info [ "artifact-dir" ] ~docv:"DIR"
            ~doc:"Write a replay artifact for any failure into $(docv).")
    and+ pool = jobs_term in
    match Ddbm_check.Conformance.sweep ~configs ~gen_seed ?artifact_dir pool with
    | Ok n ->
        Format.printf "conformance: %d configurations clean (jobs=%d)@." n
          (Par.Pool.jobs pool)
    | Error (f, artifact) ->
        Format.eprintf "%s@." (Ddbm_check.Conformance.failure_to_string f);
        Option.iter
          (fun path -> Format.eprintf "replay artifact: %s@." path)
          artifact;
        exit 1
  in
  Cmd.v (Cmd.info "check" ~doc) term

let replay_cmd =
  let doc =
    "Re-execute a conformance failure artifact (seed + params + algorithm, \
     as written by the conformance harness) with the serializability \
     audit, invariant checks, determinism check and an event trace \
     attached. Exits 1 when the failure reproduces."
  in
  let term =
    let open Term.Syntax in
    let+ file =
      Arg.(
        required
        & pos 0 (some non_dir_file) None
        & info [] ~docv:"ARTIFACT" ~doc:"Replay artifact file.")
    and+ trace_events =
      Arg.(
        value & opt int 40
        & info [ "trace-events" ] ~docv:"N"
            ~doc:"Print the last N traced events of a reproduced failure.")
    and+ trace_out, sample_interval, metrics_out = obs_flags in
    (* The determinism check inside the replay runs each machine twice,
       and both runs must be instrumented identically (the sampler
       schedules engine events). The typed-event file sink is attached to
       the first machine only — the repeat would just rewrite identical
       bytes. The first machine is also kept for the end-of-run metric
       registry: by the time replay returns it has been executed. *)
    let closers = ref [] in
    let first = ref true in
    let first_machine = ref None in
    let instrument m =
      if Option.is_none !first_machine then first_machine := Some m;
      Option.iter
        (fun interval -> Ddbm.Machine.enable_sampler m ~interval)
        sample_interval;
      match trace_out with
      | Some path when !first ->
          first := false;
          closers := attach_trace_file m path :: !closers
      | Some _ | None -> ()
    in
    let close_traces () = List.iter (fun f -> f ()) !closers in
    let replayed =
      Fun.protect ~finally:close_traces (fun () ->
          Ddbm_check.Conformance.replay_file ~instrument file)
    in
    match replayed with
    | Error msg ->
        Format.eprintf "%s@." msg;
        exit 2
    | Ok outcome -> (
        let a = outcome.Ddbm_check.Conformance.artifact in
        Format.printf "replaying %s (seed %d): %s@."
          (Params.cc_algorithm_name
             a.Ddbm_check.Replay.params.Params.cc.Params.algorithm)
          a.Ddbm_check.Replay.params.Params.run.Params.seed
          (if a.Ddbm_check.Replay.kind = "" then "(no recorded kind)"
           else a.Ddbm_check.Replay.kind);
        if a.Ddbm_check.Replay.detail <> "" then
          Format.printf "recorded failure: %s@." a.Ddbm_check.Replay.detail;
        (let plan = a.Ddbm_check.Replay.params.Params.faults in
         if not (Fault_plan.is_zero plan) then
           Format.printf "fault plan: %s@." (Fault_plan.to_spec plan));
        (match (metrics_out, !first_machine) with
        | Some path, Some m ->
            let prom, json = write_metrics m path in
            Format.printf "metrics written to %s and %s@." prom json
        | Some path, None ->
            Format.eprintf "no machine was instrumented; %s not written@." path
        | None, _ -> ());
        match outcome.Ddbm_check.Conformance.reproduced with
        | None ->
            Option.iter
              (fun r -> Format.printf "%a@." Ddbm.Sim_result.pp r)
              outcome.Ddbm_check.Conformance.result;
            Format.printf "failure did NOT reproduce: run is conforming@."
        | Some f ->
            Format.printf "failure REPRODUCED:@.%s@."
              (Ddbm_check.Conformance.failure_to_string f);
            let tail = outcome.Ddbm_check.Conformance.trace_tail in
            let n = List.length tail in
            let skipped = Stdlib.max 0 (n - trace_events) in
            if n > 0 then begin
              Format.printf "last %d traced events:@."
                (Stdlib.min n trace_events);
              List.iteri
                (fun i line -> if i >= skipped then Format.printf "  %s@." line)
                tail
            end;
            exit 1)
  in
  Cmd.v (Cmd.info "replay" ~doc) term

let trace_cmd =
  let doc =
    "Run one simulation with full observability: write a typed event \
     trace with time-series samples, reconstruct per-transaction \
     timelines, and print the response-time decomposition."
  in
  let term =
    let open Term.Syntax in
    let+ params = params_term
    and+ out =
      Arg.(
        value & opt string "trace.json"
        & info [ "o"; "out" ] ~docv:"FILE"
            ~doc:
              "Trace output file: Chrome trace_event JSON (open at \
               ui.perfetto.dev) by default, JSON-lines when $(docv) ends \
               in .jsonl.")
    and+ interval =
      Arg.(
        value & opt float 1.
        & info [ "sample-interval" ] ~docv:"SECONDS"
            ~doc:"Time-series sampling interval (simulated seconds).")
    in
    let m = Ddbm.Machine.create params in
    Ddbm.Machine.enable_sampler m ~interval;
    let tracer = Ddbm.Machine.enable_events m in
    let emitted = ref 0 in
    Tracer.attach tracer (fun ~time:_ _ -> incr emitted);
    let timeline = Ddbm.Timeline.of_params params in
    Tracer.attach tracer (Ddbm.Timeline.sink timeline);
    let close =
      attach_trace_file m
        ~num_nodes:params.Params.database.Params.num_proc_nodes out
    in
    let result = Fun.protect ~finally:close (fun () -> Ddbm.Machine.execute m) in
    Format.printf "%a@." Ddbm.Sim_result.pp result;
    Format.printf
      "%d typed events written to %s (%d committed transactions \
       reconstructed)@."
      !emitted out
      (List.length (Ddbm.Timeline.committed timeline));
    Format.printf
      "self-profile: %d sim events, wall %.2f s, %.0f events/s, heap \
       high-water %d words@."
      result.Ddbm.Sim_result.sim_events result.Ddbm.Sim_result.wall_seconds
      result.Ddbm.Sim_result.events_per_sec
      result.Ddbm.Sim_result.top_heap_words
  in
  Cmd.v (Cmd.info "trace" ~doc) term

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  let doc = "Carey & Livny 1989 distributed database machine simulator" in
  let info = Cmd.info "ddbm" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ run_cmd; sweep_cmd; check_cmd; replay_cmd; trace_cmd ]))
