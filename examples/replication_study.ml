(* Replicated data and the footnote-13 story.

   The paper's footnote 13 recalls that in [Care88] the optimistic
   algorithm beat two-phase locking "when several copies of each data
   item needed updating and messages were expensive", and that [Care89]
   showed 2PL regains dominance "by simply deferring requests for write
   locks on remote copies until the first phase of the commit protocol"
   — the O2PL variant. This example reproduces that story on the
   read-one/write-all replication substrate:

   - plain 2PL pays two messages per remote copy per updated page during
     execution (write-all at access);
   - O2PL piggybacks its remote write intent on the prepare message;
   - OPT certifies the copies at prepare and resolves conflicts by abort.

   Run with:  dune exec examples/replication_study.exe *)

open Ddbm_model

let run ~algorithm ~replication ~inst_per_msg =
  let d = Params.default in
  let params =
    {
      Params.database = { d.Params.database with Params.replication };
      workload = { d.Params.workload with Params.think_time = 8. };
      resources = { d.Params.resources with Params.inst_per_msg };
      cc = { d.Params.cc with Params.algorithm };
      run =
        { Params.seed = 13; warmup = 30.; measure = 200.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
    }
  in
  Ddbm.Machine.run params

let () =
  Format.printf
    "Replication study: 8 nodes, 3 copies per file, think 8 s@.@.";
  List.iter
    (fun inst_per_msg ->
      Format.printf "--- %.0f instructions per message ---@." inst_per_msg;
      Format.printf "%-6s %10s %12s %10s@." "algo" "tput tx/s" "response s"
        "messages";
      List.iter
        (fun algorithm ->
          let r = run ~algorithm ~replication:3 ~inst_per_msg in
          Format.printf "%-6s %10.2f %12.2f %10d@."
            (Params.cc_algorithm_name algorithm)
            r.Ddbm.Sim_result.throughput r.Ddbm.Sim_result.mean_response
            r.Ddbm.Sim_result.messages)
        [ Params.Twopl; Params.O2pl; Params.Opt ];
      Format.printf "@.")
    [ 1_000.; 4_000.; 8_000. ];
  Format.printf
    "With cheap messages the three algorithms are disk-bound and close;@.\
     as messages grow expensive, plain 2PL's write-all-at-access traffic@.\
     drags it below OPT — and O2PL, which defers remote write locks to@.\
     the commit protocol, keeps 2PL's blocking advantage without the@.\
     message bill. Exactly the [Care88] -> [Care89] progression the@.\
     paper cites.@."
