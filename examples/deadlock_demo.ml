(* A deterministic walk through distributed deadlock handling, driving the
   concurrency control layer directly (no workload generator):

   1. Two transactions write-lock one page each on different "nodes", then
      request each other's page: a global deadlock that no single node can
      see.
   2. The rotating Snoop detector unions the per-node waits-for graphs,
      finds the cycle, and aborts the youngest transaction.
   3. Under wound-wait the same pattern never deadlocks: the older
      transaction wounds the younger one at request time.

   Run with:  dune exec examples/deadlock_demo.exe *)

open Desim
open Ddbm_model
open Ddbm_cc

let section title = Format.printf "@.=== %s ===@." title

let mk_hooks eng clock on_abort =
  {
    Cc_intf.eng;
    clock;
    charge_cc_request = (fun () -> ());
    request_abort =
      (fun txn reason ->
        if (not txn.Txn.doomed) && not (Txn.in_second_phase txn) then begin
          txn.Txn.doomed <- true;
          on_abort txn reason
        end);
  }

let mk_txn clock ~tid ~time =
  let ts = Timestamp.Clock.make clock ~time in
  {
    Txn.tid;
    attempt = 1;
    origin_time = time;
    attempt_time = time;
    startup_ts = ts;
    cc_ts = ts;
    commit_ts = None;
    plan = { Plan.relation = 0; cohorts = [] };
    phase = Txn.Working;
    doomed = false;
  }

let page index = Ids.Page.make ~file:0 ~index

let global_deadlock_demo () =
  section "2PL: global deadlock resolved by the Snoop";
  let eng = Engine.create () in
  let clock = Timestamp.Clock.create () in
  let aborted = Queue.create () in
  let hooks =
    mk_hooks eng clock (fun txn reason ->
        Queue.push (txn, reason) aborted;
        Format.printf "  t=%.3fs  Snoop aborts T%d (%s)@." (Engine.now eng)
          txn.Txn.tid
          (Txn.abort_reason_name reason))
  in
  (* two "nodes", each with its own 2PL manager *)
  let node0 = Twopl.make hooks and node1 = Twopl.make hooks in
  let t1 = mk_txn clock ~tid:1 ~time:0.0 in
  let t2 = mk_txn clock ~tid:2 ~time:0.1 in
  (* cohort processes: lock the local page, then reach for the remote one *)
  Engine.spawn eng (fun () ->
      node0.Cc_intf.cc_read t1 (page 0);
      node0.Cc_intf.cc_write t1 (page 0);
      Format.printf "  t=%.3fs  T1 holds page0 at node0@." (Engine.now eng);
      Engine.wait 0.2;
      Format.printf "  t=%.3fs  T1 requests page1 at node1...@." (Engine.now eng);
      (try
         node1.Cc_intf.cc_read t1 (page 1);
         Format.printf "  t=%.3fs  T1 granted page1@." (Engine.now eng)
       with Txn.Aborted _ -> Format.printf "  T1 aborted@."));
  Engine.spawn eng (fun () ->
      node1.Cc_intf.cc_read t2 (page 1);
      node1.Cc_intf.cc_write t2 (page 1);
      Format.printf "  t=%.3fs  T2 holds page1 at node1@." (Engine.now eng);
      Engine.wait 0.2;
      Format.printf "  t=%.3fs  T2 requests page0 at node0...@." (Engine.now eng);
      (try
         node0.Cc_intf.cc_read t2 (page 0);
         Format.printf "  t=%.3fs  T2 granted page0@." (Engine.now eng)
       with Txn.Aborted _ ->
         Format.printf "  t=%.3fs  T2's blocked request rejected: it aborts \
                        and releases@." (Engine.now eng)));
  (* a miniature Snoop: every second, union both nodes' waits-for graphs *)
  let cpus = Array.init 2 (fun _ -> Cpu.create eng ~rate:1_000_000.) in
  let net =
    Net.create ~inst_per_msg:1_000. ~cpu_of:(function
      | Ids.Proc i -> cpus.(i)
      | Ids.Host -> cpus.(0))
      ()
  in
  let edges_of = function
    | 0 -> node0.Cc_intf.cc_edges ()
    | _ -> node1.Cc_intf.cc_edges ()
  in
  let snoop =
    Snoop.create eng ~net ~num_nodes:2 ~detection_interval:1.0 ~edges_of
      ~request_abort:(fun ~from_node:_ txn reason ->
        hooks.Cc_intf.request_abort txn reason;
        (* deliver the abort: reject the victim's blocked requests *)
        node0.Cc_intf.cc_abort txn;
        node1.Cc_intf.cc_abort txn)
  in
  Snoop.start snoop;
  Engine.run ~until:3. eng;
  Format.printf "  => %d transaction(s) aborted; T1 proceeded@."
    (Queue.length aborted)

let wound_wait_demo () =
  section "Wound-wait: the same pattern cannot deadlock";
  let eng = Engine.create () in
  let clock = Timestamp.Clock.create () in
  let hooks =
    mk_hooks eng clock (fun txn reason ->
        Format.printf "  t=%.3fs  T%d is wounded (%s)@." (Engine.now eng)
          txn.Txn.tid
          (Txn.abort_reason_name reason))
  in
  let node0 = Wound_wait.make hooks and node1 = Wound_wait.make hooks in
  let t1 = mk_txn clock ~tid:1 ~time:0.0 (* older *) in
  let t2 = mk_txn clock ~tid:2 ~time:0.1 (* younger *) in
  Engine.spawn eng (fun () ->
      node0.Cc_intf.cc_read t1 (page 0);
      node0.Cc_intf.cc_write t1 (page 0);
      Engine.wait 0.2;
      Format.printf "  t=%.3fs  older T1 requests T2's page...@."
        (Engine.now eng);
      try
        node1.Cc_intf.cc_read t1 (page 1);
        Format.printf "  t=%.3fs  T1 granted after the wound completes@."
          (Engine.now eng)
      with Txn.Aborted _ -> assert false);
  Engine.spawn eng (fun () ->
      node1.Cc_intf.cc_read t2 (page 1);
      node1.Cc_intf.cc_write t2 (page 1);
      Engine.wait 0.2;
      Format.printf "  t=%.3fs  younger T2 requests T1's page: it waits@."
        (Engine.now eng);
      try node0.Cc_intf.cc_read t2 (page 0)
      with Txn.Aborted _ ->
        Format.printf "  t=%.3fs  T2's wait is cancelled by its own abort@."
          (Engine.now eng));
  (* doom propagation: when T2 is wounded, abort it at both nodes *)
  Engine.spawn eng (fun () ->
      let rec watch () =
        Engine.wait 0.05;
        if t2.Txn.doomed then begin
          node0.Cc_intf.cc_abort t2;
          node1.Cc_intf.cc_abort t2
        end
        else watch ()
      in
      watch ());
  Engine.run ~until:3. eng

let () =
  Format.printf "Distributed deadlock handling demo@.";
  global_deadlock_demo ();
  wound_wait_demo ();
  Format.printf "@.Done.@."
