(* Machine-size scaling (Section 4.2 of the paper): grow the machine from
   1 to 8 processing nodes while declustering the database across all of
   them, and watch throughput scale under a fixed 128-terminal workload.
   This is the experiment behind Figures 2-5; at high load the speedup of
   the n-node system approaches n (and can transiently exceed it for the
   contention-limited algorithms, because parallelism also relieves data
   contention).

   Run with:  dune exec examples/scaling.exe *)

open Ddbm_model

let run ~algorithm ~nodes ~think =
  let d = Params.default in
  let params =
    {
      d with
      Params.database =
        {
          d.Params.database with
          Params.num_proc_nodes = nodes;
          partitioning_degree = nodes;
        };
      workload = { d.Params.workload with Params.think_time = think };
      cc = { d.Params.cc with Params.algorithm };
      run =
        (* smaller machines respond ~8/nodes times slower under this
           saturated workload, so their windows must grow accordingly to
           reach steady state *)
        (let scale = 8. /. float_of_int nodes in
         { Params.seed = 3; warmup = 40. *. scale; measure = 250. *. scale;
           restart_delay_floor = 0.5; fresh_restart_plan = false });
      faults = Fault_plan.zero;
    }
  in
  Ddbm.Machine.run params

let () =
  let think = 2. in
  Format.printf
    "Scaling study: 1/2/4/8 processing nodes, think %.0f s, 128 terminals@.@."
    think;
  List.iter
    (fun algorithm ->
      Format.printf "%s:@." (Params.cc_algorithm_name algorithm);
      let base = run ~algorithm ~nodes:1 ~think in
      List.iter
        (fun nodes ->
          let r = if nodes = 1 then base else run ~algorithm ~nodes ~think in
          Format.printf
            "  %d node%s: tput %6.2f tx/s (speedup %5.2fx), response %7.2f s, \
             disk util %.2f@."
            nodes
            (if nodes = 1 then " " else "s")
            r.Ddbm.Sim_result.throughput
            (r.Ddbm.Sim_result.throughput /. base.Ddbm.Sim_result.throughput)
            r.Ddbm.Sim_result.mean_response r.Ddbm.Sim_result.proc_disk_util)
        [ 1; 2; 4; 8 ];
      Format.printf "@.")
    [ Params.No_dc; Params.Twopl ]
