(* Benchmark harness.

   `main.exe` regenerates every table/figure of the paper's evaluation
   section (Figures 2-17 plus the variants described in the running text)
   as aligned text tables, then runs Bechamel micro-benchmarks of the
   simulator's hot data structures. See EXPERIMENTS.md for the comparison
   against the paper. *)

(* Wall-clock timing of the harness itself is the whole point here. *)
(* lint: allow ambient file *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Figure harness                                                      *)

let wall_now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let run_figures ~pool ~profile ~ids ~thinks ~csv_dir ~verbose =
  let cache = Ddbm.Experiment.create_cache ~verbose () in
  let started = wall_now () in
  let generators =
    match ids with
    | [] -> Ddbm.Figures.all
    | ids ->
        List.map
          (fun id ->
            match Ddbm.Figures.find id with
            | Some g -> (id, g)
            | None ->
                Printf.eprintf "unknown figure id %S\n" id;
                exit 2)
          ids
  in
  Printf.printf
    "Reproducing %d figures (profile %s; %d think-time points; %d jobs)\n\n%!"
    (List.length generators)
    (Ddbm.Experiment.profile_name profile)
    (List.length thinks) (Par.Pool.jobs pool);
  (* All simulation work happens here, fanned out over the pool; the
     per-figure pass below is then pure cache hits and formatting. *)
  let n_runs =
    Ddbm.Figures.prefill_cache cache pool ~profile ~thinks generators
  in
  let prefill_wall = wall_now () -. started in
  List.iter
    (fun (id, generate) ->
      let figure = generate cache ~profile ~thinks in
      print_string (Ddbm.Figure.to_table figure);
      print_newline ();
      match csv_dir with
      | None -> ()
      | Some dir ->
          let path = Filename.concat dir (id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Ddbm.Figure.to_csv figure);
          close_out oc)
    generators;
  Printf.printf
    "Total: %.1f s wall (%.1f s simulating, %.1f s cpu), %d simulation runs \
     (%d cache hits) at %d jobs\n\
     %!"
    (wall_now () -. started)
    prefill_wall (Sys.time ()) n_runs cache.Ddbm.Experiment.hits
    (Par.Pool.jobs pool)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of simulator substrates                   *)

let micro_tests () =
  let open Bechamel in
  let heap_test =
    Test.make ~name:"heap push/pop x1000"
      (Staged.stage (fun () ->
           let h = Desim.Heap.create ~cmp:Int.compare in
           for i = 0 to 999 do
             Desim.Heap.push h ((i * 7919) mod 1000)
           done;
           while not (Desim.Heap.is_empty h) do
             ignore (Desim.Heap.pop h)
           done))
  in
  let rng_test =
    let rng = Desim.Rng.create 42 in
    Test.make ~name:"rng exponential x1000"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Desim.Rng.exponential rng ~mean:1.0)
           done))
  in
  let engine_test =
    Test.make ~name:"engine 1000 timed events"
      (Staged.stage (fun () ->
           let eng = Desim.Engine.create () in
           for i = 1 to 1000 do
             ignore (Desim.Engine.schedule eng ~at:(float_of_int i) ignore)
           done;
           Desim.Engine.run eng))
  in
  let process_test =
    Test.make ~name:"engine 100 process spawns+waits"
      (Staged.stage (fun () ->
           let eng = Desim.Engine.create () in
           for _ = 1 to 100 do
             Desim.Engine.spawn eng (fun () ->
                 for _ = 1 to 10 do
                   Desim.Engine.wait 1.0
                 done)
           done;
           Desim.Engine.run eng))
  in
  let cpu_test =
    Test.make ~name:"cpu 200 PS jobs"
      (Staged.stage (fun () ->
           let eng = Desim.Engine.create () in
           let cpu = Desim.Cpu.create eng ~rate:1_000_000. in
           for i = 1 to 200 do
             Desim.Cpu.submit cpu
               ~instructions:(float_of_int (1000 + (i * 37 mod 5000)))
               ignore
           done;
           Desim.Engine.run eng))
  in
  let sim_test =
    Test.make ~name:"end-to-end NO_DC mini-sim"
      (Staged.stage (fun () ->
           let open Ddbm_model in
           let p = Ddbm.Experiment.params_of_config ~profile:Ddbm.Experiment.Quick
               { Ddbm.Experiment.base_config with
                 Ddbm.Experiment.algorithm = Params.No_dc; think = 8. } in
           let p = { p with Params.run =
                       { p.Params.run with Params.warmup = 2.; measure = 10. } } in
           ignore (Ddbm.Machine.run p)))
  in
  [ heap_test; rng_test; engine_test; process_test; cpu_test; sim_test ]

let run_micro () =
  let open Bechamel in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  Printf.printf "== micro-benchmarks (Bechamel, monotonic clock) ==\n%!";
  let tests = Test.make_grouped ~name:"desim" (micro_tests ()) in
  let results = analyze (benchmark tests) in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, result) ->
         match Bechamel.Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
         | _ -> Printf.printf "%-40s (no estimate)\n" name);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Observability overhead: events/sec plain vs traced vs exported      *)

let run_observability ~out =
  let open Ddbm_model in
  let d = Params.default in
  let params =
    {
      Params.database =
        {
          d.Params.database with
          Params.num_proc_nodes = 8;
          partitioning_degree = 8;
          file_size = 120;
        };
      workload =
        { d.Params.workload with Params.think_time = 1.; num_terminals = 64 };
      resources = d.Params.resources;
      cc = { d.Params.cc with Params.algorithm = Params.Twopl };
      run =
        {
          Params.seed = 1;
          warmup = 5.;
          measure = 30.;
          restart_delay_floor = 0.5;
          fresh_restart_plan = false;
        };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
    }
  in
  (* best of [reps] to damp scheduler noise *)
  let measure instrument =
    let reps = 3 in
    let best = ref 0. in
    let heap = ref 0 in
    for _ = 1 to reps do
      let m = Ddbm.Machine.create params in
      instrument m;
      let r = Ddbm.Machine.execute m in
      if r.Ddbm.Sim_result.events_per_sec > !best then
        best := r.Ddbm.Sim_result.events_per_sec;
      heap := Stdlib.max !heap r.Ddbm.Sim_result.top_heap_words
    done;
    (!best, !heap)
  in
  let plain, plain_heap = measure (fun _ -> ()) in
  let traced, traced_heap =
    measure (fun m ->
        let tracer = Ddbm.Machine.enable_events m in
        Tracer.attach tracer (fun ~time:_ _ -> ()))
  in
  let exported, exported_heap =
    measure (fun m ->
        Ddbm.Machine.enable_sampler m ~interval:1.;
        let tracer = Ddbm.Machine.enable_events m in
        let buf = Buffer.create (1 lsl 20) in
        let chrome =
          Ddbm.Trace_export.Chrome.create ~num_nodes:8 (Buffer.add_string buf)
        in
        Tracer.attach tracer (Ddbm.Trace_export.Chrome.sink chrome))
  in
  let overhead base x = (base -. x) /. base *. 100. in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"config\": \"2pl, 8 nodes, 64 terminals, 35 s simulated\",\n\
    \  \"events_per_sec_plain\": %.0f,\n\
    \  \"events_per_sec_traced\": %.0f,\n\
    \  \"events_per_sec_exported\": %.0f,\n\
    \  \"overhead_traced_pct\": %.2f,\n\
    \  \"overhead_exported_pct\": %.2f,\n\
    \  \"top_heap_words_plain\": %d,\n\
    \  \"top_heap_words_traced\": %d,\n\
    \  \"top_heap_words_exported\": %d\n\
     }\n"
    plain traced exported (overhead plain traced) (overhead plain exported)
    plain_heap traced_heap exported_heap;
  close_out oc;
  Printf.printf
    "== observability overhead ==\n\
     plain     %10.0f events/s\n\
     traced    %10.0f events/s (%.1f%% overhead)\n\
     exported  %10.0f events/s (%.1f%% overhead)\n\
     written to %s\n\n\
     %!"
    plain traced
    (overhead plain traced)
    exported
    (overhead plain exported)
    out

(* ------------------------------------------------------------------ *)
(* Fault-machinery overhead: a zero plan must cost nothing (it installs
   no runtime at all); an armed-but-quiet plan (runtime installed, no
   fault ever fires) prices the timeout/judge machinery itself; a lossy
   plan shows the real degradation and the availability/goodput metrics
   working. *)

let run_faults ~out =
  let open Ddbm_model in
  let d = Params.default in
  let params faults =
    {
      d with
      Params.database =
        {
          d.Params.database with
          Params.num_proc_nodes = 8;
          partitioning_degree = 8;
          file_size = 120;
        };
      workload =
        { d.Params.workload with Params.think_time = 1.; num_terminals = 64 };
      cc = { d.Params.cc with Params.algorithm = Params.Twopl };
      run =
        {
          Params.seed = 1;
          warmup = 5.;
          measure = 30.;
          restart_delay_floor = 0.5;
          fresh_restart_plan = false;
        };
      faults;
    }
  in
  (* armed: the fault runtime (timeouts, message judge, decision log) is
     installed, but the only scheduled fault lies far past the horizon *)
  let armed_plan =
    {
      Fault_plan.zero with
      Fault_plan.crashes =
        [ { Fault_plan.target = Ids.Proc 0; at = 1e6; duration = 1. } ];
      fault_seed = 1;
    }
  in
  let lossy_plan =
    {
      Fault_plan.zero with
      Fault_plan.msg_loss = 0.05;
      msg_dup = 0.01;
      msg_delay = 0.001;
      timeout = 0.5;
      timeout_cap = 2.;
      max_retries = 6;
      fault_seed = 1;
    }
  in
  let measure faults =
    let reps = 3 in
    let best = ref 0. in
    let last = ref None in
    for _ = 1 to reps do
      let r = Ddbm.Machine.run (params faults) in
      if r.Ddbm.Sim_result.events_per_sec > !best then
        best := r.Ddbm.Sim_result.events_per_sec;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  let off, off_r = measure Fault_plan.zero in
  let armed, _ = measure armed_plan in
  let lossy, lossy_r = measure lossy_plan in
  let overhead base x = (base -. x) /. base *. 100. in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"config\": \"2pl, 8 nodes, 64 terminals, 35 s simulated\",\n\
    \  \"events_per_sec_faults_off\": %.0f,\n\
    \  \"events_per_sec_armed_quiet\": %.0f,\n\
    \  \"events_per_sec_lossy\": %.0f,\n\
    \  \"overhead_armed_pct\": %.2f,\n\
    \  \"overhead_lossy_pct\": %.2f,\n\
    \  \"off_throughput\": %.4f,\n\
    \  \"lossy_throughput\": %.4f,\n\
    \  \"lossy_goodput\": %.4f,\n\
    \  \"lossy_availability\": %.6f,\n\
    \  \"lossy_timeouts\": %d,\n\
    \  \"lossy_retries\": %d,\n\
    \  \"lossy_msgs_dropped\": %d\n\
     }\n"
    off armed lossy (overhead off armed) (overhead off lossy)
    off_r.Ddbm.Sim_result.throughput lossy_r.Ddbm.Sim_result.throughput
    lossy_r.Ddbm.Sim_result.goodput lossy_r.Ddbm.Sim_result.availability
    lossy_r.Ddbm.Sim_result.timeouts lossy_r.Ddbm.Sim_result.retries
    lossy_r.Ddbm.Sim_result.msgs_dropped;
  close_out oc;
  Printf.printf
    "== fault-machinery overhead ==\n\
     faults off   %10.0f events/s\n\
     armed quiet  %10.0f events/s (%.1f%% overhead)\n\
     lossy 5%%     %10.0f events/s (tput %.2f -> %.2f tx/s, availability \
     %.4f)\n\
     written to %s\n\n\
     %!"
    off armed
    (overhead off armed)
    lossy off_r.Ddbm.Sim_result.throughput lossy_r.Ddbm.Sim_result.throughput
    lossy_r.Ddbm.Sim_result.availability out

(* ------------------------------------------------------------------ *)
(* Raw events/sec is hardware-dependent, so a pinned number would not
   transfer between a laptop and the CI runner. Gated scenarios
   (BENCH_parallel, BENCH_recovery) therefore pin events/sec
   *normalized by a calibration workload* (a fixed, pure single-core
   heap exercise measured in the same process): the ratio cancels most
   of the machine-speed difference and moves only when the simulator's
   own hot path moves. *)

let calibration_units_per_sec () =
  let iters = 2_000 in
  let sink = ref 0 in
  let t0 = wall_now () in
  for _ = 1 to iters do
    let h = Desim.Heap.create ~cmp:Int.compare in
    for i = 0 to 999 do
      Desim.Heap.push h ((i * 7919) mod 1000)
    done;
    while not (Desim.Heap.is_empty h) do
      match Desim.Heap.pop h with Some v -> sink := !sink + v | None -> ()
    done
  done;
  ignore (Sys.opaque_identity !sink);
  float_of_int iters /. (wall_now () -. t0)

(* Minimal scanner for the flat pin file: the float following
   ["key": ]. No JSON library is available in this environment. *)
let json_number ~key text =
  let needle = Printf.sprintf "\"%s\"" key in
  let n = String.length text and m = String.length needle in
  let rec find i =
    if i + m > n then None
    else if String.sub text i m = needle then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let i = ref i in
      while
        !i < n && (text.[!i] = ':' || text.[!i] = ' ' || text.[!i] = '\n')
      do
        incr i
      done;
      let start = !i in
      while
        !i < n
        && (match text.[!i] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr i
      done;
      if !i = start then None
      else float_of_string_opt (String.sub text start (!i - start))

(* ------------------------------------------------------------------ *)
(* Durability & recovery: under a rate-driven crash plan with the log
   disk on, primary/backup failover (replicas=1) must strictly beat the
   doom-every-resident-cohort baseline (replicas=0) on goodput without
   hurting availability, and neither run may lose a committed
   transaction. (Availability counts node-seconds up, so under one
   crash plan it is identical by construction; failover's gain is the
   committed work salvaged while nodes are down.) *)

let run_recovery ~out ~gate ~pin =
  let open Ddbm_model in
  let d = Params.default in
  let crashy =
    {
      Fault_plan.zero with
      Fault_plan.crash_rate = 0.02;
      mean_repair = 1.5;
      msg_loss = 0.02;
      timeout = 0.5;
      timeout_cap = 2.;
      max_retries = 4;
      fault_seed = 31;
    }
  in
  let params ?(recovery_jobs = 1) ?(faults = crashy) replicas =
    {
      d with
      Params.database =
        {
          d.Params.database with
          Params.num_proc_nodes = 8;
          partitioning_degree = 8;
          file_size = 120;
        };
      workload =
        { d.Params.workload with Params.think_time = 1.; num_terminals = 64 };
      cc = { d.Params.cc with Params.algorithm = Params.Twopl };
      run =
        {
          Params.seed = 1;
          warmup = 5.;
          measure = 30.;
          restart_delay_floor = 0.5;
          fresh_restart_plan = false;
        };
      durability =
        {
          Params.log_disk = true;
          log_min_time = 0.002;
          log_max_time = 0.006;
          log_force = Params.At_prepare;
          replicas;
          recovery_jobs;
        };
      faults;
    }
  in
  let doom = Ddbm.Machine.run (params 0) in
  let failover = Ddbm.Machine.run (params 1) in
  (* recovery at scale: the same crashy machine with torn tails and
     crash-during-recovery layered on, recovered serially and with four
     chain-parallel redo workers. Correctness must be mode-independent
     (lost_commits = 0 both ways, run-twice determinism) and the
     chain-parallel run's wall-clock cost is pinned normalized to the
     calibration workload, like BENCH_parallel. *)
  let chaos =
    { crashy with Fault_plan.torn_tail = 0.25; recrash = 0.2; fault_seed = 47 }
  in
  let serial_chaos = Ddbm.Machine.run (params ~faults:chaos 1) in
  let t0 = wall_now () in
  let chained = Ddbm.Machine.run (params ~recovery_jobs:4 ~faults:chaos 1) in
  let wall_chained = wall_now () -. t0 in
  let t1 = wall_now () in
  let chained2 = Ddbm.Machine.run (params ~recovery_jobs:4 ~faults:chaos 1) in
  let wall_chained2 = wall_now () -. t1 in
  let deterministic = Ddbm.Sim_result.equal chained chained2 in
  (* best of the two (identical) runs: a scheduling hiccup in one run
     must not read as a simulator regression *)
  let events_per_sec =
    float_of_int chained.Ddbm.Sim_result.sim_events
    /. Stdlib.min wall_chained wall_chained2
  in
  let calib = calibration_units_per_sec () in
  let normalized = events_per_sec /. calib in
  let improved =
    failover.Ddbm.Sim_result.availability >= doom.Ddbm.Sim_result.availability
    && failover.Ddbm.Sim_result.goodput > doom.Ddbm.Sim_result.goodput
  in
  let line tag (r : Ddbm.Sim_result.t) =
    Printf.sprintf
      "  \"%s\": {\"availability\": %.6f, \"goodput\": %.4f, \"throughput\": \
       %.4f, \"recoveries\": %d, \"mean_recovery_time\": %.4f, \"failovers\": \
       %d, \"orphaned\": %d, \"lost_commits\": %d, \"recovery_chains\": %d, \
       \"recovery_degraded\": %d, \"wal_torn_tails\": %d}"
      tag r.Ddbm.Sim_result.availability r.Ddbm.Sim_result.goodput
      r.Ddbm.Sim_result.throughput r.Ddbm.Sim_result.recoveries
      r.Ddbm.Sim_result.mean_recovery_time r.Ddbm.Sim_result.failovers
      r.Ddbm.Sim_result.orphaned r.Ddbm.Sim_result.lost_commits
      r.Ddbm.Sim_result.recovery_chains r.Ddbm.Sim_result.recovery_degraded
      r.Ddbm.Sim_result.wal_torn_tails
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"config\": \"2pl, 8 nodes, 64 terminals, log disk + rate-driven \
     crashes, 35 s simulated\",\n\
     %s,\n\
     %s,\n\
     %s,\n\
     %s,\n\
    \  \"failover_improves\": %b,\n\
    \  \"chained_deterministic\": %b,\n\
    \  \"events_per_sec\": %.0f,\n\
    \  \"calibration_units_per_sec\": %.1f,\n\
    \  \"normalized_events_per_calib\": %.2f\n\
     }\n"
    (line "replicas_0" doom)
    (line "replicas_1" failover)
    (line "chaos_serial" serial_chaos)
    (line "chaos_jobs4" chained)
    improved deterministic events_per_sec calib normalized;
  close_out oc;
  Printf.printf
    "== durability & recovery ==\n\
     replicas=0  availability %.4f, goodput %6.2f pages/s, %d recoveries, %d \
     orphaned, %d lost\n\
     replicas=1  availability %.4f, goodput %6.2f pages/s, %d recoveries, %d \
     failovers, %d lost\n\
     failover improves goodput without hurting availability: %b\n\
     chaos serial  mttr %.4f s, %d recoveries, %d torn tails, %d degraded, %d \
     lost\n\
     chaos jobs=4  mttr %.4f s, %d recoveries, %d chains replayed, %d lost \
     (normalized %.2f, deterministic %b)\n\
     written to %s\n\n\
     %!"
    doom.Ddbm.Sim_result.availability doom.Ddbm.Sim_result.goodput
    doom.Ddbm.Sim_result.recoveries doom.Ddbm.Sim_result.orphaned
    doom.Ddbm.Sim_result.lost_commits failover.Ddbm.Sim_result.availability
    failover.Ddbm.Sim_result.goodput failover.Ddbm.Sim_result.recoveries
    failover.Ddbm.Sim_result.failovers failover.Ddbm.Sim_result.lost_commits
    improved serial_chaos.Ddbm.Sim_result.mean_recovery_time
    serial_chaos.Ddbm.Sim_result.recoveries
    serial_chaos.Ddbm.Sim_result.wal_torn_tails
    serial_chaos.Ddbm.Sim_result.recovery_degraded
    serial_chaos.Ddbm.Sim_result.lost_commits
    chained.Ddbm.Sim_result.mean_recovery_time
    chained.Ddbm.Sim_result.recoveries chained.Ddbm.Sim_result.recovery_chains
    chained.Ddbm.Sim_result.lost_commits normalized deterministic out;
  if doom.Ddbm.Sim_result.lost_commits <> 0
     || failover.Ddbm.Sim_result.lost_commits <> 0
     || not improved
  then begin
    Printf.eprintf "BENCH_recovery: durability acceptance FAILED\n%!";
    exit 1
  end;
  if serial_chaos.Ddbm.Sim_result.lost_commits <> 0
     || chained.Ddbm.Sim_result.lost_commits <> 0
  then begin
    Printf.eprintf
      "BENCH_recovery: chaos run lost committed transactions (serial %d, \
       jobs=4 %d)\n\
       %!"
      serial_chaos.Ddbm.Sim_result.lost_commits
      chained.Ddbm.Sim_result.lost_commits;
    exit 1
  end;
  if chained.Ddbm.Sim_result.recovery_chains = 0 then begin
    Printf.eprintf
      "BENCH_recovery: jobs=4 chaos run replayed no chains (recovery never \
       took the parallel path)\n\
       %!";
    exit 1
  end;
  if not deterministic then begin
    Printf.eprintf
      "BENCH_recovery: jobs=4 chaos run is not deterministic (run-twice \
       results diverged)\n\
       %!";
    exit 1
  end;
  if gate then begin
    let text =
      try In_channel.with_open_text pin In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "BENCH_recovery gate: cannot read pin %s: %s\n%!" pin
          msg;
        exit 1
    in
    match json_number ~key:"normalized_events_per_calib" text with
    | None ->
        Printf.eprintf
          "BENCH_recovery gate: no normalized_events_per_calib in %s\n%!" pin;
        exit 1
    | Some pinned ->
        let floor = pinned *. 0.9 in
        Printf.printf
          "== recovery bench gate ==\n\
           pinned normalized events/sec %.2f (floor %.2f), measured %.2f: %s\n\n\
           %!"
          pinned floor normalized
          (if normalized >= floor then "PASS" else "FAIL");
        if normalized < floor then begin
          Printf.eprintf
            "BENCH_recovery gate: normalized events/sec regressed >10%% \
             (%.2f < %.2f)\n\
             %!"
            normalized floor;
          exit 1
        end
  end

(* ------------------------------------------------------------------ *)
(* Parallel sweep scenario: wall-clock speedup over the pool, per-seed
   bit-identity against serial execution, and an events/sec regression
   gate against a committed pin.

   The gate pins events/sec normalized by the calibration workload (see
   above). *)

let parallel_batch_params seed =
  let open Ddbm_model in
  let d = Params.default in
  {
    d with
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = 8;
        partitioning_degree = 8;
        file_size = 120;
      };
    workload =
      { d.Params.workload with Params.think_time = 1.; num_terminals = 64 };
    cc = { d.Params.cc with Params.algorithm = Params.Twopl };
    run =
      {
        Params.seed;
        warmup = 5.;
        measure = 30.;
        restart_delay_floor = 0.5;
        fresh_restart_plan = false;
      };
  }

let run_parallel ~jobs ~out ~gate ~pin =
  let jobs =
    match jobs with Some j -> j | None -> Par.Pool.default_jobs ()
  in
  let seeds = List.init 16 (fun i -> i + 1) in
  let batch = List.map parallel_batch_params seeds in
  let serial_pool = Par.Pool.create ~jobs:1 () in
  let t0 = wall_now () in
  let serial = Par.Pool.map serial_pool Ddbm.Machine.run batch in
  let wall_serial = wall_now () -. t0 in
  let pool = Par.Pool.create ~jobs () in
  let t1 = wall_now () in
  let parallel = Par.Pool.map pool Ddbm.Machine.run batch in
  let wall_parallel = wall_now () -. t1 in
  let bit_identical = List.for_all2 Ddbm.Sim_result.equal serial parallel in
  let events =
    List.fold_left (fun acc r -> acc + r.Ddbm.Sim_result.sim_events) 0 serial
  in
  let events_per_sec = float_of_int events /. wall_serial in
  let calib = calibration_units_per_sec () in
  let normalized = events_per_sec /. calib in
  let speedup = wall_serial /. wall_parallel in
  let cores = Par.Pool.default_jobs () in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"config\": \"2pl, 8 nodes, 64 terminals, 35 s simulated, %d seeds\",\n\
    \  \"jobs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"events_total\": %d,\n\
    \  \"wall_serial_s\": %.3f,\n\
    \  \"wall_parallel_s\": %.3f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"events_per_sec_serial\": %.0f,\n\
    \  \"calibration_units_per_sec\": %.1f,\n\
    \  \"normalized_events_per_calib\": %.2f,\n\
    \  \"bit_identical\": %b\n\
     }\n"
    (List.length seeds) jobs cores events wall_serial wall_parallel speedup
    events_per_sec calib normalized bit_identical;
  close_out oc;
  Printf.printf
    "== parallel sweep (%d runs) ==\n\
     serial    %8.2f s wall (%.0f events/s, normalized %.2f)\n\
     jobs=%-3d  %8.2f s wall (speedup %.2fx on %d cores)\n\
     per-seed results bit-identical to serial: %b\n\
     written to %s\n\n\
     %!"
    (List.length seeds) wall_serial events_per_sec normalized jobs
    wall_parallel speedup cores bit_identical out;
  if not bit_identical then begin
    Printf.eprintf
      "BENCH_parallel: parallel results diverged from serial execution\n%!";
    exit 1
  end;
  if gate then begin
    let text =
      try In_channel.with_open_text pin In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "BENCH_parallel gate: cannot read pin %s: %s\n%!" pin
          msg;
        exit 1
    in
    match json_number ~key:"normalized_events_per_calib" text with
    | None ->
        Printf.eprintf
          "BENCH_parallel gate: no normalized_events_per_calib in %s\n%!" pin;
        exit 1
    | Some pinned ->
        let floor = pinned *. 0.9 in
        Printf.printf
          "== bench gate ==\n\
           pinned normalized events/sec %.2f (floor %.2f), measured %.2f: %s\n\n\
           %!"
          pinned floor normalized
          (if normalized >= floor then "PASS" else "FAIL");
        if normalized < floor then begin
          Printf.eprintf
            "BENCH_parallel gate: normalized events/sec regressed >10%% \
             (%.2f < %.2f)\n\
             %!"
            normalized floor;
          exit 1
        end
  end

(* ------------------------------------------------------------------ *)
(* Tail-latency telemetry overhead: the HDR histograms ride every
   commit's record path (response + eight decomposition components) and
   every 2PC decision/WAL force, so they must be close to free — the
   gate bounds their cost at <5% events/sec vs a histogram-free but
   otherwise identical machine. The histogram-free run must also produce
   a bit-identical simulation (histograms are pure observers); that is
   checked unconditionally. *)

let run_metrics ~out ~gate =
  let params = parallel_batch_params 1 in
  let measure histograms =
    let reps = 3 in
    let best = ref 0. in
    let last = ref None in
    for _ = 1 to reps do
      let m = Ddbm.Machine.create ~histograms params in
      let r = Ddbm.Machine.execute m in
      if r.Ddbm.Sim_result.events_per_sec > !best then
        best := r.Ddbm.Sim_result.events_per_sec;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  let plain, plain_r = measure false in
  let with_h, with_r = measure true in
  let overhead = (plain -. with_h) /. plain *. 100. in
  (* histograms may not perturb the simulation itself: everything except
     the histogram-derived p99/p999 must match bit-for-bit *)
  let same_sim =
    Ddbm.Sim_result.equal
      { plain_r with Ddbm.Sim_result.response_p99 = 0.; response_p999 = 0. }
      { with_r with Ddbm.Sim_result.response_p99 = 0.; response_p999 = 0. }
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"config\": \"2pl, 8 nodes, 64 terminals, 35 s simulated\",\n\
    \  \"events_per_sec_plain\": %.0f,\n\
    \  \"events_per_sec_histograms\": %.0f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"simulation_bit_identical\": %b,\n\
    \  \"response_p50\": %.6f,\n\
    \  \"response_p95\": %.6f,\n\
    \  \"response_p99\": %.6f,\n\
    \  \"response_p999\": %.6f\n\
     }\n"
    plain with_h overhead same_sim with_r.Ddbm.Sim_result.response_p50
    with_r.Ddbm.Sim_result.response_p95 with_r.Ddbm.Sim_result.response_p99
    with_r.Ddbm.Sim_result.response_p999;
  close_out oc;
  Printf.printf
    "== tail-latency telemetry overhead ==\n\
     no histograms   %10.0f events/s\n\
     histograms      %10.0f events/s (%.1f%% overhead)\n\
     simulation bit-identical with histograms off: %b\n\
     tail: p50 %.3f p95 %.3f p99 %.3f p999 %.3f s\n\
     written to %s\n\n\
     %!"
    plain with_h overhead same_sim with_r.Ddbm.Sim_result.response_p50
    with_r.Ddbm.Sim_result.response_p95 with_r.Ddbm.Sim_result.response_p99
    with_r.Ddbm.Sim_result.response_p999 out;
  if not same_sim then begin
    Printf.eprintf
      "BENCH_metrics: histograms perturbed the simulation outcome\n%!";
    exit 1
  end;
  if gate && overhead > 5.0 then begin
    Printf.eprintf
      "BENCH_metrics gate: histogram overhead %.2f%% exceeds the 5%% bound\n%!"
      overhead;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Open-loop admission-control overhead: the arrival pump, admission
   queue and MPL limiter replace the closed-loop terminal processes, so
   driving the same machine open loop must cost at most 5% events/sec vs
   the closed-loop baseline. The open-loop run's admission books must
   also balance exactly — offered = admitted + shed + expired +
   still_queued — which is asserted unconditionally. *)

let run_overload ~out ~gate =
  let closed_params =
    let open Ddbm_model in
    let p = parallel_batch_params 1 in
    (* longer than the parallel batch so the wall clock dominates any
       fixed setup cost *)
    { p with Params.run = { p.Params.run with Params.measure = 120. } }
  in
  let open_params =
    let open Ddbm_model in
    (* qps just under the closed loop's ~6.7 tx/s capacity, MPL near its
       ~57 mean population: the same machine at a comparable operating
       point, driven open loop instead of by terminals. Overloading it
       instead would change the event mix (deadlock thrash) and measure
       the regime, not the admission machinery. *)
    let arrivals =
      match Arrival.of_spec "qps=6,cap=64,mpl=56" with
      | Ok a -> a
      | Error msg -> failwith msg
    in
    {
      closed_params with
      Params.workload =
        { closed_params.Params.workload with Params.think_time = 0. };
      arrivals;
    }
  in
  let measure params =
    let reps = 3 in
    let best = ref 0. in
    let last = ref None in
    for _ = 1 to reps do
      let m = Ddbm.Machine.create params in
      let r = Ddbm.Machine.execute m in
      if r.Ddbm.Sim_result.events_per_sec > !best then
        best := r.Ddbm.Sim_result.events_per_sec;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  let closed, closed_r = measure closed_params in
  let opened, open_r = measure open_params in
  let overhead = (closed -. opened) /. closed *. 100. in
  let offered = open_r.Ddbm.Sim_result.offered
  and admitted = open_r.Ddbm.Sim_result.admitted
  and shed = open_r.Ddbm.Sim_result.shed
  and expired = open_r.Ddbm.Sim_result.expired
  and still_queued = open_r.Ddbm.Sim_result.still_queued in
  let conserved = offered = admitted + shed + expired + still_queued in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"config\": \"2pl, 8 nodes, qps=6 cap=64 mpl=56 vs 64 closed \
     terminals, 125 s simulated\",\n\
    \  \"events_per_sec_closed\": %.0f,\n\
    \  \"events_per_sec_open\": %.0f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"offered\": %d,\n\
    \  \"admitted\": %d,\n\
    \  \"shed\": %d,\n\
    \  \"expired\": %d,\n\
    \  \"still_queued\": %d,\n\
    \  \"conservation_holds\": %b,\n\
    \  \"queue_depth_max\": %d,\n\
    \  \"closed_overload_counters_zero\": %b\n\
     }\n"
    closed opened overhead offered admitted shed expired still_queued conserved
    open_r.Ddbm.Sim_result.queue_depth_max
    (closed_r.Ddbm.Sim_result.offered = 0
    && closed_r.Ddbm.Sim_result.queue_depth_max = 0);
  close_out oc;
  Printf.printf
    "== open-loop admission overhead ==\n\
     closed loop     %10.0f events/s\n\
     open loop       %10.0f events/s (%.1f%% overhead)\n\
     admission books: %d offered = %d admitted + %d shed + %d expired + %d \
     queued (%s)\n\
     written to %s\n\n\
     %!"
    closed opened overhead offered admitted shed expired still_queued
    (if conserved then "balanced" else "VIOLATED")
    out;
  if not conserved then begin
    Printf.eprintf "BENCH_overload: admission conservation violated\n%!";
    exit 1
  end;
  if gate && overhead > 5.0 then begin
    Printf.eprintf
      "BENCH_overload gate: open-loop overhead %.2f%% exceeds the 5%% bound\n%!"
      overhead;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let profile_conv =
  let parse s =
    match Ddbm.Experiment.profile_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg "profile must be quick, standard or full")
  in
  Arg.conv (parse, fun fmt p ->
      Format.pp_print_string fmt (Ddbm.Experiment.profile_name p))

let main =
  let open Term.Syntax in
  let+ profile =
    Arg.(
      value
      & opt profile_conv Ddbm.Experiment.Quick
      & info [ "p"; "profile" ] ~docv:"PROFILE"
          ~doc:"Simulation length: quick, standard or full.")
  and+ ids =
    Arg.(
      value & opt (list string) []
      & info [ "figs" ] ~docv:"IDS"
          ~doc:"Comma-separated figure ids (default: all). E.g. fig2,fig5.")
  and+ thinks =
    Arg.(
      value
      & opt (list float) Ddbm.Experiment.default_think_times
      & info [ "thinks" ] ~docv:"T1,T2,..." ~doc:"Think times to sweep.")
  and+ csv_dir =
    Arg.(
      value & opt (some string) None
      & info [ "csv-dir" ] ~docv:"DIR" ~doc:"Also write each figure as CSV.")
  and+ skip_micro =
    Arg.(value & flag & info [ "no-micro" ] ~doc:"Skip micro-benchmarks.")
  and+ skip_figs =
    Arg.(value & flag & info [ "no-figs" ] ~doc:"Skip figure reproduction.")
  and+ skip_obs =
    Arg.(
      value & flag
      & info [ "no-obs" ] ~doc:"Skip the observability overhead benchmark.")
  and+ obs_out =
    Arg.(
      value
      & opt string "BENCH_observability.json"
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:"Where to write the observability overhead report.")
  and+ skip_faults =
    Arg.(
      value & flag
      & info [ "no-faults" ] ~doc:"Skip the fault-machinery overhead benchmark.")
  and+ faults_out =
    Arg.(
      value
      & opt string "BENCH_faults.json"
      & info [ "faults-out" ] ~docv:"FILE"
          ~doc:"Where to write the fault-machinery overhead report.")
  and+ skip_recovery =
    Arg.(
      value & flag
      & info [ "no-recovery" ]
          ~doc:"Skip the durability & recovery benchmark.")
  and+ recovery_out =
    Arg.(
      value
      & opt string "BENCH_recovery.json"
      & info [ "recovery-out" ] ~docv:"FILE"
          ~doc:"Where to write the durability & recovery report.")
  and+ skip_parallel =
    Arg.(
      value & flag
      & info [ "no-parallel" ]
          ~doc:"Skip the parallel sweep speedup/bit-identity benchmark.")
  and+ parallel_out =
    Arg.(
      value
      & opt string "BENCH_parallel.json"
      & info [ "parallel-out" ] ~docv:"FILE"
          ~doc:"Where to write the parallel sweep report.")
  and+ skip_metrics =
    Arg.(
      value & flag
      & info [ "no-metrics" ]
          ~doc:"Skip the tail-latency telemetry overhead benchmark.")
  and+ metrics_out =
    Arg.(
      value
      & opt string "BENCH_metrics.json"
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Where to write the tail-latency telemetry overhead report.")
  and+ skip_overload =
    Arg.(
      value & flag
      & info [ "no-overload" ]
          ~doc:"Skip the open-loop admission overhead benchmark.")
  and+ overload_out =
    Arg.(
      value
      & opt string "BENCH_overload.json"
      & info [ "overload-out" ] ~docv:"FILE"
          ~doc:"Where to write the open-loop admission overhead report.")
  and+ gate =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Fail (exit 1) when the parallel or recovery benchmark's \
             normalized events/sec regresses more than 10% below its \
             committed pin, or when the metrics benchmark's histogram \
             overhead or the overload benchmark's open-loop overhead \
             exceeds 5% events/sec.")
  and+ pin =
    Arg.(
      value
      & opt string "bench/BENCH_parallel.pin.json"
      & info [ "pin" ] ~docv:"FILE"
          ~doc:"Committed pin the --gate compares against.")
  and+ recovery_pin =
    Arg.(
      value
      & opt string "bench/BENCH_recovery.pin.json"
      & info [ "recovery-pin" ] ~docv:"FILE"
          ~doc:
            "Committed pin the --gate compares the recovery benchmark's \
             normalized events/sec against.")
  and+ jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the figure suite and the parallel \
             benchmark (default: the number of cores).")
  and+ verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log each run.")
  in
  if not skip_figs then begin
    let pool = Par.Pool.create ?jobs () in
    run_figures ~pool ~profile ~ids ~thinks ~csv_dir ~verbose
  end;
  if not skip_micro then run_micro ();
  if not skip_obs then run_observability ~out:obs_out;
  if not skip_faults then run_faults ~out:faults_out;
  if not skip_recovery then
    run_recovery ~out:recovery_out ~gate ~pin:recovery_pin;
  if not skip_metrics then run_metrics ~out:metrics_out ~gate;
  if not skip_overload then run_overload ~out:overload_out ~gate;
  if not skip_parallel then run_parallel ~jobs ~out:parallel_out ~gate ~pin

let () =
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "ddbm-bench" ~doc:"Regenerate the paper's figures")
          main))
